"""Event-driven schedulers: sync extraction, semisync, buffered async.

The contract (see ``docs/architecture.md``): the ``sync`` scheduler is
the seed engine's round loop bit-for-bit on every backend; ``buffered``
with ``buffer_size == cohort`` and a zero staleness discount degenerates
to it; the event fields the asynchronous schedulers thread through
``RoundRecord.extras`` survive JSON round-trips.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.data import build_federated_dataset, make_dataset
from repro.fl.config import FLConfig
from repro.fl.scheduler import (
    SCHEDULERS,
    BufferedScheduler,
    SemiSyncScheduler,
    SyncScheduler,
    make_scheduler,
    nominal_cohort,
)
from repro.nn.models import mlp
from repro.utils.io import load_history, save_history

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

ALL_BACKEND_CFGS = [("serial", 0), ("thread", 3)] + (
    [("process", 3)] if HAS_FORK else []
)


@pytest.fixture(scope="module")
def fed():
    ds = make_dataset("cifar10", seed=0, n_samples=240, size=8)
    return build_federated_dataset(
        ds, "label_skew", num_clients=6, frac_labels=0.2, rng=0, num_label_sets=3
    )


def model_fn_for(fed):
    def model_fn(rng):
        return mlp(fed.num_classes, fed.input_shape, hidden=16, rng=rng)

    return model_fn


def run_one(fed, method: str, extra: dict | None = None, **cfg_kwargs):
    cfg = FLConfig(
        rounds=3, sample_rate=0.6, local_epochs=1, batch_size=10, lr=0.05,
        eval_every=1, **cfg_kwargs,
    ).with_extra(**(extra or {}))
    algo = build_algorithm(method, fed, model_fn_for(fed), cfg, seed=0)
    history = algo.run()
    return history, algo


class TestSyncExtraction:
    """scheduler='sync' must be the default engine, on every backend."""

    def test_explicit_sync_equals_default(self, fed):
        base_h, base_a = run_one(fed, "fedavg")
        sync_h, sync_a = run_one(fed, "fedavg", scheduler="sync")
        np.testing.assert_array_equal(base_h.accuracies, sync_h.accuracies)
        np.testing.assert_array_equal(base_h.losses, sync_h.losses)
        np.testing.assert_array_equal(base_h.cumulative_mb, sync_h.cumulative_mb)
        np.testing.assert_array_equal(base_a.global_params, sync_a.global_params)
        assert isinstance(sync_a.scheduler, SyncScheduler)

    @pytest.mark.parametrize("cfg_kwargs", [
        {},
        {"dropout_rate": 0.2},
        {"codec": "topk", "network": "stragglers", "deadline": 1.0},
    ])
    def test_sync_identical_across_backends(self, fed, cfg_kwargs):
        base_h, _ = run_one(fed, "fedclust", extra={"lam": "auto"},
                            scheduler="sync", **cfg_kwargs)
        for backend, workers in ALL_BACKEND_CFGS[1:]:
            h, _ = run_one(fed, "fedclust", extra={"lam": "auto"},
                           scheduler="sync", backend=backend, workers=workers,
                           **cfg_kwargs)
            np.testing.assert_array_equal(base_h.accuracies, h.accuracies)
            np.testing.assert_array_equal(base_h.losses, h.losses)
            np.testing.assert_array_equal(base_h.cumulative_mb, h.cumulative_mb)
            np.testing.assert_array_equal(base_h.sim_seconds, h.sim_seconds)


class TestBufferedReducesToSync:
    """buffer_size == cohort + zero staleness discount == the sync loop."""

    def test_bitwise_equal_ideal_network(self, fed):
        cohort = nominal_cohort(fed.num_clients, 0.6)
        sync_h, sync_a = run_one(fed, "fedavg")
        buf_h, buf_a = run_one(
            fed, "fedavg", scheduler="buffered",
            buffer_size=cohort, staleness_alpha=0.0,
        )
        np.testing.assert_array_equal(sync_h.accuracies, buf_h.accuracies)
        np.testing.assert_array_equal(sync_h.losses, buf_h.losses)
        np.testing.assert_array_equal(sync_h.cumulative_mb, buf_h.cumulative_mb)
        np.testing.assert_array_equal(sync_h.upload_bytes, buf_h.upload_bytes)
        np.testing.assert_array_equal(sync_a.global_params, buf_a.global_params)
        # all-zero staleness in the recorded events
        for r in buf_h.records:
            for e in r.extras.get("events", ()):
                assert e["staleness"] == 0

    def test_bitwise_equal_with_dropout(self, fed):
        cohort = nominal_cohort(fed.num_clients, 0.6)
        sync_h, _ = run_one(fed, "fedavg", dropout_rate=0.3)
        buf_h, _ = run_one(
            fed, "fedavg", scheduler="buffered", dropout_rate=0.3,
            buffer_size=cohort, staleness_alpha=0.0,
        )
        np.testing.assert_array_equal(sync_h.accuracies, buf_h.accuracies)
        np.testing.assert_array_equal(sync_h.cumulative_mb, buf_h.cumulative_mb)

    def test_equal_under_hetero_network(self, fed):
        """Accuracy/traffic bitwise; the virtual clock agrees to 1 ulp
        (a global event clock accumulates, sync sums per-round maxima)."""
        cohort = nominal_cohort(fed.num_clients, 0.6)
        sync_h, _ = run_one(fed, "fedavg", network="hetero")
        buf_h, _ = run_one(
            fed, "fedavg", scheduler="buffered", network="hetero",
            buffer_size=cohort, staleness_alpha=0.0,
        )
        np.testing.assert_array_equal(sync_h.accuracies, buf_h.accuracies)
        np.testing.assert_array_equal(sync_h.cumulative_mb, buf_h.cumulative_mb)
        np.testing.assert_allclose(sync_h.sim_seconds, buf_h.sim_seconds,
                                   rtol=1e-12)

    def test_buffered_equivalent_across_backends(self, fed):
        base_h, _ = run_one(fed, "fedavg", scheduler="buffered",
                            network="stragglers")
        for backend, workers in ALL_BACKEND_CFGS[1:]:
            h, _ = run_one(fed, "fedavg", scheduler="buffered",
                           network="stragglers", backend=backend,
                           workers=workers)
            np.testing.assert_array_equal(base_h.accuracies, h.accuracies)
            np.testing.assert_array_equal(base_h.cumulative_mb, h.cumulative_mb)
            np.testing.assert_array_equal(base_h.sim_seconds, h.sim_seconds)


class TestBufferedAsync:
    def test_flushes_and_staleness_recorded(self, fed):
        h, algo = run_one(fed, "fedavg", scheduler="buffered", buffer_size=2,
                          network="stragglers")
        assert isinstance(algo.scheduler, BufferedScheduler)
        # rounds count flushes: ceil(rounds * concurrency / k) of them
        cohort = nominal_cohort(fed.num_clients, 0.6)
        assert len(h) == int(np.ceil(3 * cohort / 2))
        events = [e for r in h.records for e in r.extras.get("events", ())]
        assert events, "buffered runs must record arrival events"
        assert any(e["staleness"] > 0 for e in events), (
            "a straggler's update should arrive stale"
        )
        arrivals = [e["t"] for e in events]
        assert all(t >= 0 for t in arrivals)
        flushes = [e["flush"] for e in events]
        assert flushes == sorted(flushes)
        # virtual clock advances monotonically across records
        assert (h.sim_seconds >= 0).all()

    def test_stale_updates_are_discounted(self, fed):
        """alpha > 0 must change the aggregate vs alpha = 0 when buffers
        actually contain mixed staleness."""
        h0, a0 = run_one(fed, "fedavg", scheduler="buffered", buffer_size=2,
                         network="stragglers", staleness_alpha=0.0)
        h1, a1 = run_one(fed, "fedavg", scheduler="buffered", buffer_size=2,
                         network="stragglers", staleness_alpha=2.0)
        assert not np.array_equal(a0.global_params, a1.global_params)
        # same schedule either way: identical event stream and traffic
        np.testing.assert_array_equal(h0.cumulative_mb, h1.cumulative_mb)

    def test_staleness_discount_modes(self, fed):
        cfg = FLConfig(staleness_alpha=0.5)
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        assert algo.staleness_discount(0) == 1.0
        assert algo.staleness_discount(1) == pytest.approx(2.0 ** -0.5)
        assert algo.staleness_discount(3) == pytest.approx(4.0 ** -0.5)
        const = build_algorithm(
            "fedavg", fed, model_fn_for(fed),
            cfg.with_extra(sched_staleness_mode="const"), seed=0,
        )
        assert const.staleness_discount(0) == 1.0
        assert const.staleness_discount(1) == 0.5
        assert const.staleness_discount(7) == 0.5
        # invalid mode/alpha combinations are rejected at config time
        with pytest.raises(ValueError, match="sched_staleness_mode"):
            cfg.with_extra(sched_staleness_mode="exp")
        # const is a flat *discount*: alpha > 1 would amplify stale updates
        with pytest.raises(ValueError, match="amplify"):
            FLConfig(staleness_alpha=2.0).with_extra(sched_staleness_mode="const")
        # ... and the runtime backstop catches the env-override path too
        const.scheduler = type("S", (), {"staleness_alpha": 2.0})()
        with pytest.raises(ValueError, match="amplify"):
            const.staleness_discount(1)

    def test_refill_not_biased_to_low_ids(self):
        """Partial refills draw uniformly from the fresh cohort instead of
        truncating the sorted pool (which would starve high client ids)."""
        ds = make_dataset("cifar10", seed=1, n_samples=480, size=8)
        fed12 = build_federated_dataset(
            ds, "label_skew", num_clients=12, frac_labels=0.2, rng=1,
            num_label_sets=3,
        )
        cfg = FLConfig(
            rounds=4, sample_rate=0.5, local_epochs=1, batch_size=10,
            lr=0.05, eval_every=1, scheduler="buffered", buffer_size=2,
            network="stragglers",
        )
        algo = build_algorithm("fedavg", fed12, model_fn_for(fed12), cfg, seed=0)
        h = algo.run()
        participants = {
            e["client"] for r in h.records for e in r.extras.get("events", ())
        }
        assert max(participants) >= 8

    def test_default_merge_delegates_to_aggregate(self, fed):
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05,
                       staleness_alpha=1.0)
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        algo.setup()
        updates = [algo.client_update(cid, 1) for cid in (0, 1)]
        seen = {}
        original_aggregate = algo.aggregate

        def spy(round_idx, merged):
            seen["weights"] = [u.n_samples for u in merged]
            original_aggregate(round_idx, merged)

        algo.aggregate = spy
        algo.merge(1, updates, [0, 3])
        fresh, stale = seen["weights"]
        assert fresh == updates[0].n_samples
        assert stale == pytest.approx(updates[1].n_samples / 4.0)


class TestSemiSync:
    def test_cancels_tail_and_beats_sync_clock(self, fed):
        sync_h, _ = run_one(fed, "fedavg", network="stragglers")
        h, algo = run_one(fed, "fedavg", scheduler="semisync",
                          network="stragglers", over_select_frac=1.0)
        assert isinstance(algo.scheduler, SemiSyncScheduler)
        cancelled = [c for r in h.records for c in r.extras.get("cancelled", ())]
        assert cancelled, "over-selection must cancel a tail under stragglers"
        # quorum per round = the nominal cohort
        quorum = nominal_cohort(fed.num_clients, 0.6)
        for r in h.records:
            assert len(r.extras.get("events", ())) <= quorum
        assert h.total_sim_seconds() < sync_h.total_sim_seconds()

    def test_deadline_with_filled_quorum_cancels_not_drops(self, fed):
        """Once the quorum fills, the server stops waiting — later arrivals
        are cancellations, not deadline casualties, even when their trip
        would also have overrun the deadline."""
        base, _ = run_one(fed, "fedavg", scheduler="semisync",
                          network="stragglers", over_select_frac=1.0)
        deadline = float(base.sim_seconds.max()) * 1.05
        h, _ = run_one(fed, "fedavg", scheduler="semisync",
                       network="stragglers", over_select_frac=1.0,
                       deadline=deadline)
        assert h.deadline_dropped() == []
        cancelled = [c for r in h.records for c in r.extras.get("cancelled", ())]
        assert cancelled
        np.testing.assert_array_equal(base.accuracies, h.accuracies)

    def test_cancelled_uploads_cost_nothing(self, fed):
        sync_h, _ = run_one(fed, "fedavg", network="stragglers")
        h, _ = run_one(fed, "fedavg", scheduler="semisync",
                       network="stragglers", over_select_frac=1.0)
        # more downloads (over-selection) but uploads capped at the quorum
        assert int(h.download_bytes.sum()) > int(sync_h.download_bytes.sum())
        assert int(h.upload_bytes.sum()) <= int(sync_h.upload_bytes.sum())


class TestEventRecordRoundTrip:
    @pytest.mark.parametrize("scheduler,kwargs", [
        ("buffered", {"buffer_size": 2, "network": "stragglers"}),
        ("semisync", {"network": "stragglers", "over_select_frac": 1.0}),
    ])
    def test_extras_survive_json(self, fed, tmp_path, scheduler, kwargs):
        h, _ = run_one(fed, "fedavg", scheduler=scheduler, **kwargs)
        path = tmp_path / "history.json"
        save_history(h, path)
        loaded = load_history(path)
        assert [r.extras for r in loaded.records] == [
            r.extras for r in h.records
        ]
        np.testing.assert_array_equal(h.sim_seconds, loaded.sim_seconds)
        events = [e for r in loaded.records for e in r.extras.get("events", ())]
        assert events and set(events[0]) == {"client", "t", "staleness", "flush"}

    def test_sim_seconds_to_target(self, fed):
        h, _ = run_one(fed, "fedavg", scheduler="buffered",
                       network="stragglers")
        cum = h.sim_seconds.cumsum()
        worst = float(h.accuracies.min())
        t = h.sim_seconds_to_target(worst)
        first = int(np.flatnonzero(h.accuracies >= worst)[0])
        assert t == pytest.approx(cum[first])
        assert h.sim_seconds_to_target(2.0) is None


class TestPlumbing:
    def test_registry_and_factory(self):
        assert set(SCHEDULERS) == {"sync", "semisync", "buffered"}
        assert isinstance(make_scheduler(scheduler="sync"), SyncScheduler)
        s = make_scheduler(scheduler="buffered", buffer_size=4,
                           staleness_alpha=1.5)
        assert isinstance(s, BufferedScheduler)
        assert s.buffer_size == 4 and s.staleness_alpha == 1.5
        assert isinstance(
            make_scheduler(scheduler="semisync"), SemiSyncScheduler
        )

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler(scheduler="gossip")

    def test_auto_resolves_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "buffered")
        monkeypatch.setenv("REPRO_BUFFER_SIZE", "7")
        monkeypatch.setenv("REPRO_STALENESS_ALPHA", "0.25")
        s = make_scheduler(scheduler="auto")
        assert isinstance(s, BufferedScheduler)
        assert s.buffer_size == 7 and s.staleness_alpha == 0.25
        monkeypatch.setenv("REPRO_SCHEDULER", "semisync")
        monkeypatch.setenv("REPRO_OVER_SELECT_FRAC", "0.75")
        s = make_scheduler(scheduler="auto")
        assert isinstance(s, SemiSyncScheduler)
        assert s.over_select_frac == 0.75
        monkeypatch.delenv("REPRO_SCHEDULER")
        assert isinstance(make_scheduler(scheduler="auto"), SyncScheduler)

    def test_auto_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "buffered")
        monkeypatch.setenv("REPRO_BUFFER_SIZE", "many")
        with pytest.raises(ValueError, match="REPRO_BUFFER_SIZE"):
            make_scheduler(scheduler="auto")

    def test_config_validates_scheduler_fields(self):
        with pytest.raises(ValueError, match="scheduler"):
            FLConfig(scheduler="gossip")
        with pytest.raises(ValueError, match="buffer_size"):
            FLConfig(buffer_size=-1)
        with pytest.raises(ValueError, match="staleness_alpha"):
            FLConfig(staleness_alpha=-0.1)
        with pytest.raises(ValueError, match="over_select_frac"):
            FLConfig(over_select_frac=-0.5)

    def test_nominal_cohort(self):
        assert nominal_cohort(6, 0.6) == 4
        assert nominal_cohort(100, 0.1) == 10
        assert nominal_cohort(3, 0.01) == 1


class TestExtraKeyValidation:
    """Unknown net_*/sched_* knobs in FLConfig.extra are typos, not noise."""

    def test_known_keys_accepted(self):
        cfg = FLConfig().with_extra(
            net_mbps=5.0, net_straggler_frac=0.5, sched_staleness_mode="poly",
            sched_concurrency=4, prox_mu=0.01, lam="auto",
        )
        assert cfg.extra["net_mbps"] == 5.0

    def test_unknown_net_key_rejected_with_listing(self):
        with pytest.raises(ValueError, match="net_mbps"):
            FLConfig(extra={"net_mpbs": 5.0})  # transposed typo

    def test_unknown_sched_key_rejected_with_listing(self):
        with pytest.raises(ValueError, match="sched_staleness_mode"):
            FLConfig(extra={"sched_staleness": 0.5})

    def test_with_extra_validates_too(self):
        with pytest.raises(ValueError, match="unknown network knob"):
            FLConfig().with_extra(net_latency=0.1)

    def test_non_prefixed_keys_untouched(self):
        cfg = FLConfig(extra={"prox_mu": 0.01, "num_clusters": 3})
        assert cfg.extra["num_clusters"] == 3
