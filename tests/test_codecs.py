"""Wire-layer codecs: round-trip, error bounds, error feedback, metering.

The contract (see ``docs/architecture.md``): a codec's ``encode`` is pure,
``encoded_nbytes`` is exact (metered, not modeled), ``decode`` returns a
float64 vector of the original shape, and the engine's wire layer applies
all of it on the main thread so every execution backend stays bit-for-bit
identical with any codec enabled.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import ALGORITHMS, build_algorithm
from repro.data import build_federated_dataset, make_dataset
from repro.fl.codecs import (
    CODECS,
    Fp16Codec,
    IdentityCodec,
    Int8Codec,
    TopKCodec,
    make_codec,
)
from repro.fl.config import FLConfig
from repro.nn.models import mlp

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

ALL_BACKEND_CFGS = [("serial", 0), ("thread", 3)] + (
    [("process", 3)] if HAS_FORK else []
)


def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="module")
def fed():
    ds = make_dataset("cifar10", seed=0, n_samples=240, size=8)
    return build_federated_dataset(
        ds, "label_skew", num_clients=6, frac_labels=0.2, rng=0, num_label_sets=3
    )


def model_fn_for(fed):
    def model_fn(r):
        return mlp(fed.num_classes, fed.input_shape, hidden=16, rng=r)

    return model_fn


def run_one(fed, method, backend="serial", workers=0, extra=None, **cfg_kw):
    kw = dict(
        rounds=3, sample_rate=0.6, local_epochs=1, batch_size=10, lr=0.05,
        eval_every=1, backend=backend, workers=workers,
    )
    kw.update(cfg_kw)
    cfg = FLConfig(**kw).with_extra(**(extra or {}))
    algo = build_algorithm(method, fed, model_fn_for(fed), cfg, seed=0)
    history = algo.run()
    return history, algo


class TestRoundTrip:
    """decode(encode(x)) has the original shape and float64 dtype."""

    @pytest.mark.parametrize("name", sorted(CODECS))
    def test_shape_and_dtype(self, name):
        codec = make_codec(codec=name)
        delta = rng().standard_normal(257)
        enc = codec.encode(0, delta, rng())
        out = codec.decode(enc)
        assert out.shape == delta.shape
        assert out.dtype == np.float64
        assert enc.nbytes > 0
        assert enc.logical_nbytes == delta.nbytes

    def test_identity_is_lossless_and_free(self):
        codec = IdentityCodec()
        delta = rng().standard_normal(100)
        enc = codec.encode(0, delta, rng())
        np.testing.assert_array_equal(codec.decode(enc), delta)
        assert enc.nbytes == delta.nbytes

    def test_encoded_nbytes_matches_encode(self):
        for name in sorted(CODECS):
            codec = make_codec(codec=name)
            delta = rng().standard_normal(64)
            assert codec.encoded_nbytes(0, delta, rng()) == codec.encode(
                0, delta, rng()
            ).nbytes


class TestQuantization:
    def test_fp16_error_within_half_precision(self):
        delta = rng().standard_normal(1000)
        out = Fp16Codec().decode(Fp16Codec().encode(0, delta, rng()))
        # float16 has a 10-bit mantissa: relative error <= 2^-11 + eps
        np.testing.assert_allclose(out, delta, rtol=2**-10, atol=1e-7)

    def test_int8_error_bounded_by_scale(self):
        delta = rng().standard_normal(2000)
        codec = Int8Codec()
        scale = float(np.max(np.abs(delta))) / 127.0
        out = codec.decode(codec.encode(0, delta, rng()))
        assert np.max(np.abs(out - delta)) <= scale + 1e-12

    def test_int8_stochastic_rounding_is_unbiased(self):
        delta = np.full(1, 0.25)  # sits strictly between two int8 levels
        codec = Int8Codec()
        draws = np.array([
            codec.decode(codec.encode(0, delta, np.random.default_rng(i)))[0]
            for i in range(4000)
        ])
        assert abs(draws.mean() - 0.25) < 0.005

    def test_int8_zero_vector(self):
        codec = Int8Codec()
        out = codec.decode(codec.encode(0, np.zeros(16), rng()))
        np.testing.assert_array_equal(out, np.zeros(16))

    def test_int8_nbytes(self):
        delta = rng().standard_normal(100)
        enc = Int8Codec().encode(0, delta, rng())
        # one int8 per entry + float64 scale + length header
        assert enc.nbytes == 100 + 8 + 8


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        delta = np.array([0.1, -5.0, 0.2, 3.0, -0.05, 0.0, 2.0, -1.0, 0.3, 0.4])
        codec = TopKCodec(frac=0.3)
        out = codec.decode(codec.encode(0, delta, rng()))
        np.testing.assert_array_equal(
            out, [0.0, -5.0, 0.0, 3.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0]
        )

    def test_nbytes_scales_with_k(self):
        delta = rng().standard_normal(1000)
        enc = TopKCodec(frac=0.05).encode(0, delta, rng())
        # 50 float64 values + 50 int32 indices + length header
        assert enc.nbytes == 50 * 8 + 50 * 4 + 8

    def test_error_feedback_telescopes_to_true_update(self):
        """Classic EF identity: transmitted sum + final residual = delta sum."""
        codec = TopKCodec(frac=0.1)
        n, cid = 300, 7
        total_delta = np.zeros(n)
        total_sent = np.zeros(n)
        g = rng()
        for _ in range(25):
            delta = g.standard_normal(n)
            enc = codec.encode(cid, delta, g)
            codec.commit(cid, enc)
            total_delta += delta
            total_sent += codec.decode(enc)
        np.testing.assert_allclose(
            total_sent + codec.residual(cid, n), total_delta, atol=1e-9
        )

    def test_encode_is_pure_without_commit(self):
        codec = TopKCodec(frac=0.1)
        delta = rng().standard_normal(100)
        first = codec.encode(3, delta, rng())
        second = codec.encode(3, delta, rng())
        np.testing.assert_array_equal(first.payload["values"], second.payload["values"])
        np.testing.assert_array_equal(
            codec.residual(3, 100), np.zeros(100)
        )  # nothing committed yet

    def test_residuals_isolated_per_client(self):
        codec = TopKCodec(frac=0.1)
        delta = rng().standard_normal(50)
        codec.commit(0, codec.encode(0, delta, rng()))
        assert np.any(codec.residual(0, 50) != 0.0)
        np.testing.assert_array_equal(codec.residual(1, 50), np.zeros(50))
        codec.reset()
        np.testing.assert_array_equal(codec.residual(0, 50), np.zeros(50))

    def test_frac_validated(self):
        with pytest.raises(ValueError, match="topk_frac"):
            TopKCodec(frac=0.0)


class TestFactoryAndConfig:
    def test_registry_and_factory(self):
        assert set(CODECS) == {"none", "fp16", "int8", "topk"}
        assert isinstance(make_codec(codec="none"), IdentityCodec)
        assert isinstance(make_codec(codec="fp16"), Fp16Codec)
        c = make_codec(codec="topk", topk_frac=0.2)
        assert isinstance(c, TopKCodec) and c.frac == 0.2

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            make_codec(codec="gzip")

    def test_auto_resolves_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEC", "topk")
        monkeypatch.setenv("REPRO_TOPK_FRAC", "0.25")
        c = make_codec(codec="auto")
        assert isinstance(c, TopKCodec) and c.frac == 0.25
        monkeypatch.delenv("REPRO_CODEC")
        assert isinstance(make_codec(codec="auto"), IdentityCodec)

    def test_auto_rejects_bad_frac_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEC", "topk")
        monkeypatch.setenv("REPRO_TOPK_FRAC", "lots")
        with pytest.raises(ValueError, match="REPRO_TOPK_FRAC"):
            make_codec(codec="auto")

    def test_config_validates_wire_fields(self):
        with pytest.raises(ValueError, match="codec"):
            FLConfig(codec="gzip")
        with pytest.raises(ValueError, match="topk_frac"):
            FLConfig(topk_frac=0.0)
        with pytest.raises(ValueError, match="network"):
            FLConfig(network="5g")
        with pytest.raises(ValueError, match="deadline"):
            FLConfig(deadline=0.0)


class TestEngineIntegration:
    def test_default_config_is_identity_wire(self, fed):
        """codec=auto (env unset) == codec="none" == the seed behaviour."""
        h_default, a_default = run_one(fed, "fedavg")
        h_none, a_none = run_one(fed, "fedavg", codec="none", network="ideal")
        np.testing.assert_array_equal(h_default.accuracies, h_none.accuracies)
        np.testing.assert_array_equal(h_default.cumulative_mb, h_none.cumulative_mb)
        assert a_default.comm.total_up == a_none.comm.total_up
        assert a_default.comm.total_logical_up == a_none.comm.total_logical_up
        # the logical column reports the raw-float64 baseline even for the
        # identity codec (the fp32-native seed wire is itself 2x smaller)
        assert a_default.comm.total_logical_up == 2 * a_default.comm.total_up
        assert a_default.comm.total_logical_down == a_default.comm.total_down
        assert (h_default.sim_seconds == 0.0).all()

    @pytest.mark.parametrize("codec", ["fp16", "int8", "topk"])
    def test_compressed_uplink_metered(self, fed, codec):
        _, base = run_one(fed, "fedavg", codec="none")
        _, comp = run_one(fed, "fedavg", codec=codec)
        assert comp.comm.total_up < base.comm.total_up
        assert comp.comm.total_down == base.comm.total_down  # downlink untouched
        assert comp.comm.total_logical_up > comp.comm.total_up

    def test_aggregate_sees_decoded_params(self, fed):
        """With topk, the global model must be reachable only through the
        sparse decoded deltas: entries outside every client's top-k stay
        at their downloaded values."""
        h_none, a_none = run_one(fed, "fedavg", codec="none")
        h_topk, a_topk = run_one(fed, "fedavg", codec="topk", topk_frac=0.01)
        assert not np.array_equal(a_none.global_params, a_topk.global_params)
        # With 1% sparsity each client moves at most ceil(0.01*n) distinct
        # coordinates per round, so after 3 rounds most of the aggregated
        # model must still sit at θ⁰ (up to re-averaging float noise,
        # ~1e-16 — far below real SGD movement, ~1e-2) — impossible unless
        # aggregation consumed the sparse decoded deltas rather than the
        # dense trained parameters.
        fresh = build_algorithm(
            "fedavg", fed, model_fn_for(fed), FLConfig(rounds=1), seed=0
        )
        fresh.setup()
        moved = np.abs(a_topk.global_params - fresh.global_params) > 1e-9
        assert 0 < moved.sum() < 0.2 * a_topk.global_params.size

    def test_local_has_no_wire_to_compress(self, fed):
        h_none, a_none = run_one(fed, "local", codec="none")
        h_int8, a_int8 = run_one(fed, "local", codec="int8")
        np.testing.assert_array_equal(h_none.accuracies, h_int8.accuracies)
        assert a_int8.comm.total_bytes == 0

    def test_lg_local_layers_survive_lossy_codec(self, fed):
        """LG's local representation never crosses the wire, so the wire
        transform must leave each update's local slice bit-identical to
        the uncompressed run — only the global head degrades.  One round
        isolates the transform (later rounds legitimately diverge because
        clients *train* against the lossy global head)."""
        _, a_none = run_one(fed, "lg", codec="none", rounds=1)
        _, a_int8 = run_one(fed, "lg", codec="int8", rounds=1)
        sl = a_none._global_slice
        local_idx = np.ones(a_none.client_params[0].size, dtype=bool)
        local_idx[sl] = False
        assert not np.array_equal(a_none.global_part, a_int8.global_part)
        for p_none, p_int8 in zip(a_none.client_params, a_int8.client_params):
            np.testing.assert_array_equal(p_none[local_idx], p_int8[local_idx])

    @pytest.mark.parametrize("method,codec,extra", [
        ("fedavg", "int8", {}),
        ("fedclust", "topk", {"lam": "auto"}),
        ("ifca", "int8", {"num_clusters": 2}),
        ("scaffold", "fp16", {}),
    ])
    def test_cross_backend_bitwise_equivalence_with_codec(
        self, fed, method, codec, extra
    ):
        """The wire layer runs on the main thread: enabling a codec keeps
        serial/thread/process histories and comm bills bit-identical."""
        baseline_h, baseline_a = run_one(
            fed, method, "serial", 0, extra=extra, codec=codec
        )
        for backend, workers in ALL_BACKEND_CFGS[1:]:
            h, a = run_one(fed, method, backend, workers, extra=extra, codec=codec)
            np.testing.assert_array_equal(baseline_h.accuracies, h.accuracies)
            np.testing.assert_array_equal(baseline_h.losses, h.losses)
            np.testing.assert_array_equal(baseline_h.cumulative_mb, h.cumulative_mb)
            assert baseline_a.comm.total_up == a.comm.total_up
            assert baseline_a.comm.total_logical_up == a.comm.total_logical_up

    def test_round_record_carries_span_bytes(self, fed):
        h, a = run_one(fed, "fedavg", codec="int8")
        assert int(h.upload_bytes.sum()) == a.comm.total_up
        assert int(h.download_bytes.sum()) == a.comm.total_down
        assert (h.upload_bytes > 0).all() and (h.download_bytes > 0).all()


class TestNumericHardening:
    """Wire-layer numeric edge cases: overflow, non-finite uploads."""

    def test_fp16_clips_overflow_instead_of_inf(self):
        # |delta| beyond float16's finite range (65504) must saturate,
        # not become ±inf that decode would propagate into the model
        delta = np.array([1e6, -1e6, 7e4, -7e4, 1.0, 0.0])
        codec = Fp16Codec()
        out = codec.decode(codec.encode(0, delta, rng()))
        assert np.isfinite(out).all()
        f16_max = float(np.finfo(np.float16).max)
        np.testing.assert_array_equal(
            out, np.array([f16_max, -f16_max, f16_max, -f16_max, 1.0, 0.0])
        )

    def test_fp16_nan_entries_encode_as_zero(self):
        delta = np.array([np.nan, 2.0, np.inf, -np.inf])
        codec = Fp16Codec()
        out = codec.decode(codec.encode(0, delta, rng()))
        assert np.isfinite(out).all()
        f16_max = float(np.finfo(np.float16).max)
        np.testing.assert_array_equal(out, [0.0, 2.0, f16_max, -f16_max])

    @pytest.mark.parametrize("bad", [np.inf, -np.inf, np.nan])
    def test_int8_nonfinite_peak_zero_encodes_and_records(self, bad):
        # a divergent client's inf/NaN delta would give scale=inf and an
        # all-NaN decode; it must zero-encode with a recorded event
        delta = np.array([1.0, bad, -2.0])
        codec = Int8Codec()
        enc = codec.encode(7, delta, rng())
        out = codec.decode(enc)
        np.testing.assert_array_equal(out, np.zeros(3))
        assert enc.nbytes == 3 + 8 + 8  # q + scale + header, like normal
        assert codec.nonfinite_clients == []  # encode is pure
        codec.commit(7, enc)
        assert codec.nonfinite_clients == [7]
        codec.reset()
        assert codec.nonfinite_clients == []

    def test_int8_finite_peaks_do_not_record(self):
        codec = Int8Codec()
        enc = codec.encode(3, np.array([1.0, -0.5]), rng())
        codec.commit(3, enc)
        assert codec.nonfinite_clients == []

    def test_one_poisoned_client_cannot_break_the_federation(self, fed):
        """Engine-level regression: an adversarial delta entry far beyond
        the float16 range survives the fp16 wire without poisoning the
        aggregate (accuracy and parameters stay finite)."""
        from repro.fl.server import FederatedAlgorithm

        class PoisonedFedAvg(ALGORITHMS["fedavg"]):
            def client_update(self, client_id, round_idx):
                u = super().client_update(client_id, round_idx)
                if client_id == 0:
                    u.params = u.params.copy()
                    u.params[0] = 1e38  # delta overflows float16
                return u

        cfg = FLConfig(
            rounds=2, sample_rate=1.0, local_epochs=1, batch_size=10,
            lr=0.05, eval_every=1, codec="fp16",
        )
        algo = PoisonedFedAvg(fed, model_fn_for(fed), cfg, seed=0)
        h = algo.run()
        assert np.isfinite(algo.global_params).all()
        assert np.isfinite(h.accuracies).all()


@settings(max_examples=40, deadline=None)
@given(
    codec_name=st.sampled_from(sorted(CODECS)),
    values=hnp.arrays(
        np.float64,
        st.integers(min_value=1, max_value=64),
        elements=st.floats(
            min_value=-1e300, max_value=1e300,
            allow_nan=False, allow_infinity=False,
        ),
    ),
)
def test_property_every_codec_roundtrips_finite_to_finite(codec_name, values):
    """Satellite property: finite in ⇒ finite out, for every codec."""
    codec = make_codec(codec=codec_name)
    enc = codec.encode(0, values, np.random.default_rng(0))
    out = codec.decode(enc)
    assert out.shape == values.shape
    assert np.isfinite(out).all()
