"""Tests for per-client fairness statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FedAvg, FedClust, FLConfig, build_federated_dataset, make_dataset, mlp
from repro.fl.fairness import FairnessReport, fairness_report


@pytest.fixture(scope="module")
def fed():
    ds = make_dataset("cifar10", seed=0, n_samples=500, size=8)
    return build_federated_dataset(
        ds, "label_skew", num_clients=10, frac_labels=0.2, rng=0, num_label_sets=3
    )


def model_fn_for(fed):
    return lambda rng: mlp(fed.num_classes, fed.input_shape, hidden=16, rng=rng)


class TestFairnessReport:
    def test_report_fields_consistent(self, fed):
        cfg = FLConfig(rounds=3, sample_rate=0.5, local_epochs=1, lr=0.05)
        algo = FedAvg(fed, model_fn_for(fed), cfg, seed=0)
        algo.run()
        rep = fairness_report(algo)
        assert rep.per_client.shape == (fed.num_clients,)
        assert rep.minimum <= rep.mean <= rep.maximum
        assert rep.minimum <= rep.bottom_decile <= rep.mean
        assert 0.0 < rep.jain_index <= 1.0
        assert rep.mean == pytest.approx(rep.per_client.mean())

    def test_uniform_accuracies_are_fair(self):
        rep = FairnessReport(
            mean=0.8, std=0.0, minimum=0.8, maximum=0.8,
            bottom_decile=0.8, jain_index=1.0, per_client=np.full(5, 0.8),
        )
        assert rep.jain_index == 1.0

    def test_jain_detects_inequality(self, fed):
        """Jain index of a lopsided accuracy vector is well below 1."""
        accs = np.array([1.0, 1.0, 0.0, 0.0])
        jain = accs.sum() ** 2 / (accs.size * (accs**2).sum())
        assert jain == pytest.approx(0.5)

    def test_clustering_tightens_spread_under_skew(self, fed):
        """Under label skew, FedClust's per-client accuracies should be at
        least as fair as FedAvg's (a global model sacrifices the clients
        whose labels it underfits)."""
        cfg = FLConfig(rounds=5, sample_rate=0.6, local_epochs=2, lr=0.05).with_extra(lam="auto")
        fa = FedAvg(fed, model_fn_for(fed), cfg, seed=0)
        fc = FedClust(fed, model_fn_for(fed), cfg, seed=0)
        fa.run()
        fc.run()
        rep_fa = fairness_report(fa)
        rep_fc = fairness_report(fc)
        assert rep_fc.mean > rep_fa.mean
        assert rep_fc.jain_index >= rep_fa.jain_index - 0.02
