"""Subprocess driver for the crash-injection checkpoint tests.

Runs one experiments-runner cell with periodic checkpointing and kills
its own process with ``SIGKILL`` — no cleanup, no atexit, exactly like a
machine failure — the moment the checkpoint for the chosen round/flush
boundary has been written.  The parent test then resumes from
``<checkpoint_dir>/latest.ckpt`` and asserts the stitched history is
bit-for-bit identical to an unbroken run.

Usage (the test suite builds this invocation)::

    python crash_driver.py '{"dataset": "cifar10", "method": "fedavg",
        "setting": "label_skew_20", "seed": 0, "kill_at": 2,
        "config_overrides": {"rounds": 4, "checkpoint_every": 1,
                             "checkpoint_dir": "..."},
        "fl_options": {"scheduler": "sync"}}'

``kill_at`` names the completed-round (flush, for ``buffered``) count
whose checkpoint triggers the kill.  If the run finishes without
reaching it, the driver prints ``COMPLETED`` and exits 0, which the
tests treat as a harness bug.
"""

from __future__ import annotations

import json
import os
import signal
import sys


def main() -> int:
    spec = json.loads(sys.argv[1])

    from repro.experiments.configs import SMOKE_SCALE
    from repro.experiments.runner import build_cell

    algo = build_cell(
        spec["dataset"],
        spec["method"],
        spec["setting"],
        SMOKE_SCALE,
        seed=spec.get("seed", 0),
        config_overrides=spec.get("config_overrides"),
        extra_overrides=spec.get("extra_overrides"),
        fl_options=spec.get("fl_options"),
    )
    kill_at = int(spec["kill_at"])

    def die_after_checkpoint(round_idx: int, path: object) -> None:
        print(f"checkpoint {round_idx}: {path}", flush=True)
        if round_idx >= kill_at:
            # SIGKILL cannot be caught: no finally blocks, no atexit, no
            # buffered-file flushing — the checkpoint on disk is all a
            # resume gets, exactly like a pulled plug.
            os.kill(os.getpid(), signal.SIGKILL)

    algo.on_checkpoint = die_after_checkpoint
    algo.run()
    print("COMPLETED", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
