"""Execution backends: serial / thread / process equivalence and plumbing.

The engine's promise (see ``docs/architecture.md``) is that the execution
backend changes *wall-clock only*: histories, communication bills, and
cluster assignments are bit-for-bit identical because client tasks are pure
functions of ``(server state, client id, round)`` and every random draw is
keyed by name, not call order.
"""

from __future__ import annotations

import json
import multiprocessing

import numpy as np
import pytest

from golden import DATA_DIR, SIM_SECONDS_RTOL

from repro.algorithms import build_algorithm
from repro.core.fedclust import FedClust
from repro.data import build_federated_dataset, make_dataset
from repro.fl.config import FLConfig
from repro.fl.execution import (
    BACKENDS,
    VECTOR_ACC_ATOL,
    VECTOR_LOSS_RTOL,
    VECTOR_PARAM_RTOL,
    ClientSlots,
    CohortRunner,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    _split_chunks,
    make_backend,
    resolve_workers,
)
from repro.nn.models import mlp
from repro.utils.io import load_history, save_history

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="process backend needs fork")

ALL_BACKEND_CFGS = [("serial", 0), ("thread", 3)] + (
    [("process", 3)] if HAS_FORK else []
)


@pytest.fixture(scope="module")
def fed():
    ds = make_dataset("cifar10", seed=0, n_samples=240, size=8)
    return build_federated_dataset(
        ds, "label_skew", num_clients=6, frac_labels=0.2, rng=0, num_label_sets=3
    )


def model_fn_for(fed):
    def model_fn(rng):
        return mlp(fed.num_classes, fed.input_shape, hidden=16, rng=rng)

    return model_fn


def run_one(fed, method: str, backend: str, workers: int, **extra):
    cfg = FLConfig(
        rounds=3, sample_rate=0.6, local_epochs=1, batch_size=10, lr=0.05,
        eval_every=1, dropout_rate=0.2, backend=backend, workers=workers,
    ).with_extra(**extra)
    algo = build_algorithm(method, fed, model_fn_for(fed), cfg, seed=0)
    history = algo.run()
    return history, algo


class TestBackendEquivalence:
    """Serial, thread, and process runs must be indistinguishable."""

    @pytest.mark.parametrize("method,extra", [
        ("fedclust", {"lam": "auto"}),
        ("ifca", {"num_clusters": 2}),
    ])
    def test_bit_identical_histories(self, fed, method, extra):
        baseline_h, baseline_a = run_one(fed, method, "serial", 0, **extra)
        for backend, workers in ALL_BACKEND_CFGS[1:]:
            h, a = run_one(fed, method, backend, workers, **extra)
            np.testing.assert_array_equal(baseline_h.accuracies, h.accuracies)
            np.testing.assert_array_equal(baseline_h.losses, h.losses)
            np.testing.assert_array_equal(
                baseline_h.cumulative_mb, h.cumulative_mb
            )
            # cluster structure is part of the contract too
            np.testing.assert_array_equal(baseline_a.cluster_of, a.cluster_of)
            for p, q in zip(baseline_a.cluster_params, a.cluster_params):
                np.testing.assert_array_equal(p, q)

    @pytest.mark.parametrize("method", ["fedavg", "local", "scaffold"])
    def test_bit_identical_other_families(self, fed, method):
        baseline_h, _ = run_one(fed, method, "serial", 0)
        for backend, workers in ALL_BACKEND_CFGS[1:]:
            h, _ = run_one(fed, method, backend, workers)
            np.testing.assert_array_equal(baseline_h.accuracies, h.accuracies)
            np.testing.assert_array_equal(
                baseline_h.cumulative_mb, h.cumulative_mb
            )

    def test_eval_matches_serial_per_client(self, fed):
        _, serial_algo = run_one(fed, "fedclust", "serial", 0, lam="auto")
        for backend, workers in ALL_BACKEND_CFGS[1:]:
            _, algo = run_one(fed, "fedclust", backend, workers, lam="auto")
            np.testing.assert_array_equal(
                serial_algo.per_client_accuracy(), algo.per_client_accuracy()
            )


class TestRoundTiming:
    def test_history_records_wall_clock(self, fed):
        history, _ = run_one(fed, "fedavg", "serial", 0)
        assert (history.seconds > 0).all()
        assert history.setup_seconds >= 0.0
        assert history.total_seconds() >= float(history.seconds.sum())
        assert history.total_seconds(include_setup=False) == pytest.approx(
            float(history.seconds.sum())
        )

    def test_fedclust_setup_time_is_measured(self, fed):
        history, _ = run_one(fed, "fedclust", "serial", 0, lam="auto")
        # the one-shot clustering round does real work
        assert history.setup_seconds > 0.0

    def test_timing_roundtrips_through_json(self, fed, tmp_path):
        history, _ = run_one(fed, "fedavg", "serial", 0)
        path = tmp_path / "history.json"
        save_history(history, path)
        loaded = load_history(path)
        np.testing.assert_array_equal(history.seconds, loaded.seconds)
        assert loaded.setup_seconds == history.setup_seconds


class TestBackendPlumbing:
    def test_registry_and_factory(self):
        assert set(BACKENDS) == {"serial", "thread", "process", "vector"}
        assert isinstance(make_backend(backend="serial"), SerialBackend)
        assert isinstance(make_backend(backend="thread", workers=2), ThreadBackend)
        b = make_backend(backend="process", workers=5)
        assert isinstance(b, ProcessBackend) and b.workers == 5
        assert isinstance(make_backend(backend="vector"), CohortRunner)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend(backend="cluster")

    def test_auto_resolves_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        monkeypatch.setenv("REPRO_WORKERS", "7")
        b = make_backend(backend="auto")
        assert isinstance(b, ThreadBackend) and b.workers == 7
        monkeypatch.delenv("REPRO_BACKEND")
        assert isinstance(make_backend(backend="auto"), SerialBackend)

    def test_auto_rejects_bad_worker_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            make_backend(backend="auto")

    def test_config_validates_backend_fields(self):
        with pytest.raises(ValueError, match="backend"):
            FLConfig(backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            FLConfig(workers=-1)

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1

    def test_split_chunks_balanced_and_ordered(self):
        jobs = list(range(7))
        chunks = _split_chunks(jobs, 3)
        assert [j for c in chunks for j in c] == jobs
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1
        assert _split_chunks(jobs, 99) == [[j] for j in jobs]

    def test_backend_map_preserves_submission_order(self, fed):
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05)
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        algo.setup()
        for backend in (SerialBackend(), ThreadBackend(workers=3)):
            updates = backend.run_updates(algo, 1, [3, 0, 5])
            assert [u.client_id for u in updates] == [3, 0, 5]
            backend.close()


class TestExecState:
    def test_exec_state_narrows_per_client_attrs(self, fed):
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05)
        algo = build_algorithm("local", fed, model_fn_for(fed), cfg, seed=0)
        algo.setup()
        full = algo.exec_state()
        assert set(full) == {"client_params", "client_states"}
        assert len(full["client_params"]) == fed.num_clients
        narrowed = algo.exec_state(client_ids=[2, 4])
        assert isinstance(narrowed["client_params"], ClientSlots)
        assert sorted(narrowed["client_params"].slots) == [2, 4]

    def test_load_exec_state_applies_slots(self, fed):
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05)
        algo = build_algorithm("local", fed, model_fn_for(fed), cfg, seed=0)
        algo.setup()
        new_params = algo.client_params[1] + 1.0
        algo.load_exec_state(
            {"client_params": ClientSlots({1: new_params})}
        )
        np.testing.assert_array_equal(algo.client_params[1], new_params)

    def test_exec_state_skips_pre_setup_attrs(self, fed):
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05)
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        # before setup() the global model does not exist yet
        assert algo.exec_state() == {}


@needs_fork
class TestProcessBackendGuards:
    def test_one_algorithm_per_backend_instance(self, fed):
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05)
        a1 = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        a2 = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=1)
        a1.setup()
        a2.setup()
        backend = ProcessBackend(workers=2)
        try:
            backend.run_updates(a1, 1, [0, 1])
            with pytest.raises(RuntimeError, match="one algorithm run"):
                backend.run_updates(a2, 1, [0, 1])
        finally:
            backend.close()

    def test_process_results_ordered(self, fed):
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05)
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        algo.setup()
        backend = ProcessBackend(workers=2)
        try:
            updates = backend.run_updates(algo, 1, [4, 1, 2])
            assert [u.client_id for u in updates] == [4, 1, 2]
        finally:
            backend.close()


class TestStatefulRngGuard:
    def test_dropout_model_rejected_off_serial(self, fed):
        """Layer-internal RNGs draw in forward-call order, which parallel
        backends cannot reproduce — run() must refuse, not diverge."""
        from repro.nn.layers import Dense, Dropout, Flatten, ReLU
        from repro.nn.model import Sequential
        from repro.utils.rng import as_generator

        def model_fn(rng):
            rng = as_generator(rng)
            d = int(np.prod(fed.input_shape))
            return Sequential(
                Flatten(),
                Dense(d, 8, rng, np.float32, name="fc1"),
                ReLU(),
                Dropout(0.5, rng),
                Dense(8, fed.num_classes, rng, np.float32, name="head",
                      classifier_head=True),
            )

        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05,
                       backend="thread", workers=2)
        algo = build_algorithm("fedavg", fed, model_fn, cfg, seed=0)
        with pytest.raises(RuntimeError, match="own RNG state"):
            algo.run()
        # serial accepts the same model
        cfg2 = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05,
                        backend="serial")
        algo2 = build_algorithm("fedavg", fed, model_fn, cfg2, seed=0)
        assert algo2.run().final_accuracy() >= 0.0


class TestIfcaAssignmentRefresh:
    def test_unsampled_clients_get_assignments(self, fed):
        """Evaluation refreshes ``cluster_of`` for every client, including
        ones never sampled into a round (seed semantics, main-thread
        writes only)."""
        h, algo = run_one(fed, "ifca", "serial", 0, num_clusters=2)
        expected = [algo._best_cluster(cid) for cid in range(fed.num_clients)]
        assert list(algo.cluster_of) == expected


class TestCliEnvHygiene:
    def test_backend_flag_does_not_leak_env(self, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        import os

        assert main(["figure1", "--scale", "smoke",
                     "--backend", "thread", "--workers", "2"]) == 0
        assert "REPRO_BACKEND" not in os.environ
        assert "REPRO_WORKERS" not in os.environ


class TestVectorBackendEquivalence:
    """The opt-in ``vector`` backend stacks same-shape client models into
    one cohort tensor and runs batched kernels; histories must stay within
    the pinned tolerances (``VECTOR_*`` in ``repro.fl.execution``) across
    algorithm families, with byte metering exact.  Families whose client
    hooks are overridden (ifca, scaffold) serial-fallback by design and
    come out bit-for-bit."""

    @pytest.mark.parametrize("method,extra", [
        ("fedavg", {}),
        ("fedprox", {}),
        ("local", {}),
        ("scaffold", {}),
        ("fedclust", {"lam": "auto"}),
        ("ifca", {"num_clusters": 2}),
    ])
    def test_within_pinned_tolerance_vs_serial(self, fed, method, extra):
        hs, algo_s = run_one(fed, method, "serial", 0, **extra)
        hv, algo_v = run_one(fed, method, "vector", 0, **extra)
        np.testing.assert_allclose(
            hv.accuracies, hs.accuracies, atol=VECTOR_ACC_ATOL
        )
        np.testing.assert_allclose(hv.losses, hs.losses, rtol=VECTOR_LOSS_RTOL)
        # the wire path is outside the batched compute: metering is exact
        np.testing.assert_array_equal(hv.cumulative_mb, hs.cumulative_mb)
        for cid in range(fed.num_clients):
            np.testing.assert_allclose(
                algo_v.eval_params_for_client(cid),
                algo_s.eval_params_for_client(cid),
                rtol=VECTOR_PARAM_RTOL, atol=1e-8,
            )

    def test_batched_kernels_actually_run(self, fed, monkeypatch):
        """Guard against silent serial fallback: the default recipe must
        go through the fused cohort trainer, not the per-client loop."""
        import repro.fl.execution as exec_mod

        calls = {"train": 0}
        real = exec_mod.local_sgd_many

        def counting(*args, **kwargs):
            calls["train"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(exec_mod, "local_sgd_many", counting)
        run_one(fed, "fedavg", "vector", 0)
        assert calls["train"] > 0

    def test_stateful_rng_model_serial_fallback_bitwise(self, fed):
        """Models with layer-owned RNG state (Dropout) cannot be batched
        without reordering draws; the CohortRunner must produce the serial
        backend's exact history for them."""
        from repro.nn.layers import Dense, Dropout, Flatten, ReLU
        from repro.nn.model import Sequential
        from repro.utils.rng import as_generator

        def model_fn(rng):
            rng = as_generator(rng)
            d = int(np.prod(fed.input_shape))
            return Sequential(
                Flatten(),
                Dense(d, 8, rng, np.float32, name="fc1"),
                ReLU(),
                Dropout(0.5, rng),
                Dense(8, fed.num_classes, rng, np.float32, name="head",
                      classifier_head=True),
            )

        def run(backend):
            cfg = FLConfig(rounds=2, sample_rate=1.0, local_epochs=1,
                           lr=0.05, backend=backend)
            algo = build_algorithm("fedavg", fed, model_fn, cfg, seed=0)
            return algo.run()

        hs, hv = run("serial"), run("vector")
        np.testing.assert_array_equal(hs.accuracies, hv.accuracies)
        np.testing.assert_array_equal(hs.losses, hv.losses)


class TestVectorGoldenTolerance:
    """Acceptance pin: vector histories match the committed *serial*
    goldens (tests/data/golden_registry.json) within the documented
    tolerance — accuracy at ``VECTOR_ACC_ATOL``, train loss at
    ``VECTOR_LOSS_RTOL``, byte counters and extras exact, ``sim_seconds``
    at the golden rtol."""

    #: golden cases whose client recipe the CohortRunner batches; hook-
    #: overridden or non-serial-backend cases are exercised bit-for-bit
    #: by the fallback tests above
    CASES = [
        "fedavg-default",
        "fedclust-default",
        "fedavg-int8-hetero",
        "fedclust-dirichlet",
    ]

    @pytest.mark.parametrize("case", CASES)
    def test_vector_matches_pinned_serial_golden(self, case):
        from test_registry import TestGoldenEquivalence as G

        method, cfg_kw, extra, *rest = G.CASES[case]
        fed = G._fed(rest[0] if rest else "label_skew")
        cfg = FLConfig(
            rounds=3, sample_rate=0.6, local_epochs=1, batch_size=10,
            lr=0.05, eval_every=1, backend="vector", **cfg_kw
        ).with_extra(**extra)
        algo = build_algorithm(method, fed, model_fn_for(fed), cfg, seed=0)
        history = algo.run()

        golden = json.loads(
            (DATA_DIR / "golden_registry.json").read_text()
        )[case]
        d = history.as_dict()
        np.testing.assert_allclose(
            d["accuracy"], golden["accuracy"], atol=VECTOR_ACC_ATOL
        )
        np.testing.assert_allclose(
            d["train_loss"], golden["train_loss"], rtol=VECTOR_LOSS_RTOL
        )
        for key in ("cumulative_mb", "upload_bytes", "download_bytes",
                    "extras"):
            assert d[key] == golden[key], (
                f"{case}.{key} diverged from the serial golden"
            )
        np.testing.assert_allclose(
            d["sim_seconds"], golden["sim_seconds"], rtol=SIM_SECONDS_RTOL
        )


class TestRunGuards:
    def test_run_twice_rejected(self, fed):
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05)
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        algo.run()
        with pytest.raises(RuntimeError, match="once"):
            algo.run()

    def test_backend_closed_after_run(self, fed):
        cfg = FLConfig(
            rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05,
            backend="thread", workers=2,
        )
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        algo.run()
        assert algo._backend is None
