"""Failure-injection and degenerate-input robustness tests.

Federated systems meet ugly inputs: clients with almost no data, clusters
that receive no updates for many rounds, identical clients (zero weight
distance), single-class shards.  The engine must handle all of these
without crashing or corrupting state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FedAvg,
    FedClust,
    FLConfig,
    IFCA,
    build_federated_dataset,
    make_dataset,
    mlp,
)
from repro.clustering import agglomerative, proximity_matrix
from repro.data import ClientData, FederatedDataset
from repro.data.partition import label_skew_partition
from repro.fl.server import ClientUpdate


def tiny_model_fn(num_classes, input_shape):
    return lambda rng: mlp(num_classes, input_shape, hidden=8, rng=rng)


def make_manual_fed(client_sizes, num_classes=3, shape=(1, 4, 4), seed=0):
    """Hand-built federation with explicit per-client sample counts."""
    rng = np.random.default_rng(seed)
    clients = []
    for cid, n in enumerate(client_sizes):
        x = rng.normal(size=(n, *shape)).astype(np.float32)
        y = rng.integers(0, num_classes, size=n)
        n_test = max(1, n // 5)
        clients.append(
            ClientData(cid, x[n_test:], y[n_test:], x[:n_test], y[:n_test])
        )
    return FederatedDataset(clients, num_classes, shape)


class TestDegenerateClients:
    def test_two_sample_clients_survive_training(self):
        fed = make_manual_fed([2, 2, 2, 2])
        cfg = FLConfig(rounds=2, sample_rate=1.0, local_epochs=1, batch_size=10, lr=0.05)
        h = FedAvg(fed, tiny_model_fn(3, (1, 4, 4)), cfg, seed=0).run()
        assert len(h) == 2

    def test_wildly_unbalanced_clients(self):
        fed = make_manual_fed([2, 200, 2, 200])
        cfg = FLConfig(rounds=2, sample_rate=1.0, local_epochs=1, batch_size=16, lr=0.05)
        algo = FedAvg(fed, tiny_model_fn(3, (1, 4, 4)), cfg, seed=0)
        h = algo.run()
        assert np.isfinite(h.accuracies).all()

    def test_single_class_clients(self):
        """Clients whose local data is one class only (extreme skew)."""
        rng = np.random.default_rng(0)
        clients = []
        for cid in range(4):
            x = rng.normal(size=(20, 1, 4, 4)).astype(np.float32)
            y = np.full(20, cid % 3, dtype=np.int64)
            clients.append(ClientData(cid, x[4:], y[4:], x[:4], y[:4]))
        fed = FederatedDataset(clients, 3, (1, 4, 4))
        cfg = FLConfig(rounds=2, sample_rate=1.0, local_epochs=1, lr=0.05).with_extra(lam="auto")
        h = FedClust(fed, tiny_model_fn(3, (1, 4, 4)), cfg, seed=0).run()
        assert len(h) == 2

    def test_single_client_federation(self):
        fed = make_manual_fed([30])
        cfg = FLConfig(rounds=2, sample_rate=1.0, local_epochs=1, lr=0.05)
        h = FedAvg(fed, tiny_model_fn(3, (1, 4, 4)), cfg, seed=0).run()
        assert len(h) == 2


class TestClusterEdgeCases:
    def test_cluster_without_updates_keeps_params(self):
        """A cluster whose members are never sampled must keep its model."""
        fed = make_manual_fed([20, 20, 20, 20])
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05).with_extra(lam=0.0)
        algo = FedClust(fed, tiny_model_fn(3, (1, 4, 4)), cfg, seed=0)
        algo.setup()
        before = [p.copy() for p in algo.cluster_params]
        # aggregate with updates only for cluster of client 0
        gid0 = algo.cluster_of[0]
        update = ClientUpdate(
            client_id=0, params=before[gid0] + 1.0, n_samples=10, steps=1, loss=0.5
        )
        algo.aggregate(1, [update])
        for gid in range(algo.num_clusters):
            if gid == gid0:
                assert not np.allclose(algo.cluster_params[gid], before[gid])
            else:
                np.testing.assert_array_equal(algo.cluster_params[gid], before[gid])

    def test_identical_clients_form_one_cluster(self):
        """Zero weight distances must merge everyone, not crash on ties."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 1, 4, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=40)
        clients = [ClientData(c, x[8:], y[8:], x[:8], y[:8]) for c in range(5)]
        fed = FederatedDataset(clients, 3, (1, 4, 4))
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=1, lr=0.05).with_extra(lam=1e-6)
        algo = FedClust(fed, tiny_model_fn(3, (1, 4, 4)), cfg, seed=0)
        algo.setup()
        # identical data + identical θ0 + same rng per client index differs...
        # distances are tiny but may not be exactly 0; λ=1e-6 may keep them
        # apart.  The hard guarantee: clustering is valid and covers clients.
        assert algo.cluster_of.shape == (5,)
        assert algo.num_clusters >= 1

    def test_hc_on_all_zero_distances(self):
        d = np.zeros((6, 6))
        dend = agglomerative(d, "average")
        labels = dend.cut(0.5)
        assert labels.max() == 0  # everything merges at height 0

    def test_ifca_empty_cluster_tolerated(self):
        """IFCA clusters that win no clients simply keep their model."""
        fed = make_manual_fed([20, 20, 20, 20])
        cfg = FLConfig(rounds=2, sample_rate=1.0, local_epochs=1, lr=0.05).with_extra(
            num_clusters=8  # more clusters than clients
        )
        algo = IFCA(fed, tiny_model_fn(3, (1, 4, 4)), cfg, seed=0)
        h = algo.run()
        assert len(h) == 2


class TestPartitionRepair:
    def test_min_samples_repair_steals_from_largest(self):
        labels = np.concatenate([np.zeros(96, dtype=int), np.ones(4, dtype=int)])
        p = label_skew_partition(labels, 4, frac_labels=0.5, rng=0, min_samples=5)
        assert p.sizes().min() >= 5
        assert p.sizes().sum() == 100

    def test_impossible_min_samples(self):
        labels = np.zeros(4, dtype=int)
        with pytest.raises(ValueError):
            label_skew_partition(labels, 4, frac_labels=1.0, rng=0, min_samples=50)

    def test_pool_covers_all_classes_when_possible(self):
        labels = np.random.default_rng(0).integers(0, 10, size=500)
        p = label_skew_partition(labels, 20, frac_labels=0.2, rng=0, num_label_sets=5)
        covered = set()
        for s in p.client_label_sets:
            covered |= set(s)
        assert covered == set(range(10))
        # exactly 5 distinct sets
        assert len(set(p.client_label_sets)) == 5

    def test_pool_smaller_than_coverage_keeps_identity(self):
        labels = np.random.default_rng(0).integers(0, 10, size=500)
        p = label_skew_partition(labels, 12, frac_labels=0.2, rng=0, num_label_sets=3)
        assert len(set(p.client_label_sets)) <= 3

    def test_pool_validation(self):
        labels = np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            label_skew_partition(labels, 2, frac_labels=0.5, num_label_sets=0)


class TestNumericalRobustness:
    def test_training_on_constant_images(self):
        """All-zero images: gradients flow only into biases; no NaNs."""
        clients = [
            ClientData(
                0,
                np.zeros((20, 1, 4, 4), dtype=np.float32),
                np.random.default_rng(0).integers(0, 3, 20),
                np.zeros((5, 1, 4, 4), dtype=np.float32),
                np.random.default_rng(1).integers(0, 3, 5),
            )
        ]
        fed = FederatedDataset(clients, 3, (1, 4, 4))
        cfg = FLConfig(rounds=2, sample_rate=1.0, local_epochs=1, lr=0.1)
        algo = FedAvg(fed, tiny_model_fn(3, (1, 4, 4)), cfg, seed=0)
        h = algo.run()
        assert np.isfinite(h.losses).all()

    def test_proximity_on_huge_weights(self):
        v = np.full((4, 10), 1e8)
        v[0] += 1.0
        d = proximity_matrix(v)
        assert np.isfinite(d).all()

    def test_large_lr_produces_finite_history(self):
        ds = make_dataset("cifar10", seed=0, n_samples=200, size=8)
        fed = build_federated_dataset(ds, "iid", 4, rng=0)
        cfg = FLConfig(rounds=2, sample_rate=1.0, local_epochs=1, lr=5.0)
        h = FedAvg(fed, tiny_model_fn(10, fed.input_shape), cfg, seed=0).run()
        assert len(h) == 2  # may diverge, must not crash
