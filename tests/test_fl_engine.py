"""Unit tests for the FL engine: config, comm metering, history, sampling,
training routines, and the aggregation helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl import (
    CommTracker,
    FLConfig,
    History,
    RoundRecord,
    average_states,
    evaluate_accuracy,
    evaluate_loss,
    local_sgd,
    minibatches,
    sample_clients,
    weighted_average,
)
from repro.nn import SGD, mlp


class TestFLConfig:
    def test_defaults_valid(self):
        cfg = FLConfig()
        assert cfg.rounds >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rounds": 0},
            {"sample_rate": 0.0},
            {"sample_rate": 1.5},
            {"local_epochs": 0},
            {"batch_size": 0},
            {"lr": 0.0},
            {"eval_every": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FLConfig(**kwargs)

    def test_with_extra_merges(self):
        cfg = FLConfig(extra={"a": 1}).with_extra(b=2)
        assert cfg.extra == {"a": 1, "b": 2}
        cfg2 = cfg.with_extra(a=9)
        assert cfg2.extra["a"] == 9
        assert cfg.extra["a"] == 1  # original untouched


class TestCommTracker:
    def test_accumulates(self):
        t = CommTracker()
        t.record_upload(1, 100)
        t.record_upload(1, 50)
        t.record_download(1, 200)
        t.record_download(2, 10)
        assert t.round_bytes(1) == (150, 200)
        assert t.total_up == 150
        assert t.total_down == 210
        assert t.total_bytes == 360

    def test_mb_conversion(self):
        t = CommTracker()
        t.record_upload(0, 2_000_000)
        assert t.total_mb() == pytest.approx(2.0)

    def test_cumulative(self):
        t = CommTracker()
        t.record_upload(0, 1_000_000)
        t.record_upload(2, 1_000_000)
        np.testing.assert_allclose(t.cumulative_mb(3), [1.0, 1.0, 2.0])

    def test_negative_rejected(self):
        t = CommTracker()
        with pytest.raises(ValueError):
            t.record_upload(0, -1)


class TestHistory:
    def _hist(self, accs, mbs=None):
        h = History("algo", "ds")
        mbs = mbs or list(np.cumsum(np.ones(len(accs))))
        for i, (a, m) in enumerate(zip(accs, mbs)):
            h.append(RoundRecord(round=i + 1, accuracy=a, train_loss=1.0, cumulative_mb=m))
        return h

    def test_rounds_to_target(self):
        h = self._hist([0.1, 0.5, 0.8, 0.9])
        assert h.rounds_to_target(0.8) == 3
        assert h.rounds_to_target(0.95) is None

    def test_mb_to_target(self):
        h = self._hist([0.1, 0.5, 0.9], mbs=[2.0, 4.0, 6.0])
        assert h.mb_to_target(0.5) == pytest.approx(4.0)
        assert h.mb_to_target(0.99) is None

    def test_final_and_best(self):
        h = self._hist([0.2, 0.9, 0.7])
        assert h.final_accuracy() == pytest.approx(0.7)
        assert h.best_accuracy() == pytest.approx(0.9)

    def test_monotone_round_enforced(self):
        h = self._hist([0.5])
        with pytest.raises(ValueError):
            h.append(RoundRecord(round=1, accuracy=0.6, train_loss=1.0, cumulative_mb=1.0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            History().final_accuracy()

    def test_as_dict(self):
        d = self._hist([0.5, 0.6]).as_dict()
        assert d["algorithm"] == "algo"
        assert d["accuracy"] == [0.5, 0.6]


class TestSampling:
    def test_rate_size(self):
        rng = np.random.default_rng(0)
        s = sample_clients(100, 0.1, rng)
        assert s.size == 10
        assert np.unique(s).size == 10

    def test_minimum_one(self):
        s = sample_clients(5, 0.01, np.random.default_rng(0))
        assert s.size == 1

    def test_full_participation(self):
        s = sample_clients(7, 1.0, np.random.default_rng(0))
        np.testing.assert_array_equal(s, np.arange(7))

    def test_deterministic_given_rng(self):
        a = sample_clients(50, 0.2, np.random.default_rng(3))
        b = sample_clients(50, 0.2, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_clients(0, 0.5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_clients(10, 0.0, np.random.default_rng(0))


class TestTrainingRoutines:
    def test_minibatches_cover_once(self):
        batches = minibatches(23, 5, np.random.default_rng(0))
        flat = np.concatenate(batches)
        assert flat.size == 23
        np.testing.assert_array_equal(np.sort(flat), np.arange(23))
        assert len(batches) == 5

    def test_local_sgd_reduces_loss(self):
        rng = np.random.default_rng(0)
        model = mlp(3, input_shape=(1, 4, 4), hidden=16, rng=0)
        x = rng.normal(size=(60, 1, 4, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=60)
        opt = SGD(model, lr=0.1, momentum=0.9)
        loss0 = evaluate_loss(model, x, y)
        local_sgd(model, opt, x, y, epochs=10, batch_size=10, rng=rng)
        assert evaluate_loss(model, x, y) < loss0

    def test_local_sgd_step_count(self):
        model = mlp(2, input_shape=(1, 2, 2), hidden=4, rng=0)
        x = np.zeros((25, 1, 2, 2), dtype=np.float32)
        y = np.zeros(25, dtype=np.int64)
        opt = SGD(model, lr=0.01)
        _, steps = local_sgd(model, opt, x, y, epochs=3, batch_size=10, rng=np.random.default_rng(0))
        assert steps == 3 * 3  # ceil(25/10) = 3 batches per epoch

    def test_evaluate_empty_raises(self):
        model = mlp(2, input_shape=(1, 2, 2), rng=0)
        with pytest.raises(ValueError):
            evaluate_accuracy(model, np.zeros((0, 1, 2, 2)), np.zeros(0))


class TestAggregationHelpers:
    def test_weighted_average_basic(self):
        v = [np.array([0.0, 0.0]), np.array([1.0, 2.0])]
        out = weighted_average(v, [1, 3])
        np.testing.assert_allclose(out, [0.75, 1.5])

    def test_weighted_average_identity(self):
        v = [np.array([1.0, 2.0, 3.0])]
        np.testing.assert_allclose(weighted_average(v, [5]), v[0])

    def test_weighted_average_validation(self):
        with pytest.raises(ValueError):
            weighted_average([], [])
        with pytest.raises(ValueError):
            weighted_average([np.zeros(2)], [1, 2])
        with pytest.raises(ValueError):
            weighted_average([np.zeros(2), np.zeros(2)], [0, 0])

    @given(
        weights=st.lists(st.floats(0.01, 100), min_size=2, max_size=6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_average_within_hull(self, weights, seed):
        """The weighted average lies inside the coordinate-wise min/max."""
        rng = np.random.default_rng(seed)
        vecs = [rng.normal(size=4) for _ in weights]
        out = weighted_average(vecs, weights)
        stack = np.stack(vecs)
        assert (out >= stack.min(axis=0) - 1e-12).all()
        assert (out <= stack.max(axis=0) + 1e-12).all()

    def test_average_states(self):
        s1 = {"m": np.array([0.0, 0.0])}
        s2 = {"m": np.array([2.0, 4.0])}
        out = average_states([s1, s2], [1, 1])
        np.testing.assert_allclose(out["m"], [1.0, 2.0])

    def test_average_states_empty(self):
        assert average_states([], []) == {}
