"""Dynamic client populations: churn, growth, trace, newcomer onboarding.

The contract (see ``docs/architecture.md``): ``population="static"`` (the
default) is bit-for-bit the fixed-roster engine; dynamic models emit a
deterministic, seeded event stream that every scheduler applies at round
(or dispatch-cycle) boundaries; leaves only gate selection eligibility
(state survives for returns); joins attach a held-out shard and are
assigned a cluster through the paper's Alg. 2 weight-distance rule (or
the ``random``/``coldstart`` ablations); applied events land in
``RoundRecord.extras["population"]`` and survive JSON round-trips.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.data import build_federated_dataset, make_dataset
from repro.fl.config import FLConfig
from repro.fl.population import (
    ChurnPopulation,
    GrowthPopulation,
    StaticPopulation,
    TracePopulation,
    make_population,
)
from repro.fl.sampling import sample_clients
from repro.nn.models import mlp
from repro.utils.io import load_history, save_history
from repro.utils.rng import RngFactory

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def fresh_fed(num_clients: int = 10, n_samples: int = 400):
    ds = make_dataset("cifar10", seed=0, n_samples=n_samples, size=8)
    return build_federated_dataset(
        ds, "label_skew", num_clients=num_clients, frac_labels=0.2, rng=0,
        num_label_sets=3,
    )


def model_fn_for(fed):
    def model_fn(rng):
        return mlp(fed.num_classes, fed.input_shape, hidden=16, rng=rng)

    return model_fn


def run_one(fed, method="fedclust", seed=0, extra=None, **cfg_kwargs):
    kwargs = dict(
        rounds=6, sample_rate=0.5, local_epochs=1, batch_size=10, lr=0.05,
        eval_every=1,
    )
    kwargs.update(cfg_kwargs)
    cfg = FLConfig(**kwargs).with_extra(**(extra or {}))
    algo = build_algorithm(method, fed, model_fn_for(fed), cfg, seed=seed)
    history = algo.run()
    return history, algo


def params_digest(algo) -> str:
    parts = [
        algo.eval_params_for_client(c) for c in range(algo.fed.num_clients)
    ]
    return hashlib.sha256(np.concatenate(parts).tobytes()).hexdigest()


# ----------------------------------------------------------------------
# sampling: eligibility + the pinned rounding rule
# ----------------------------------------------------------------------
class TestSampling:
    def test_full_eligibility_matches_seed_sampling_bitwise(self):
        for seed in range(5):
            a = sample_clients(10, 0.4, np.random.default_rng(seed))
            b = sample_clients(
                10, 0.4, np.random.default_rng(seed),
                eligible=np.arange(10, dtype=np.int64),
            )
            np.testing.assert_array_equal(a, b)

    def test_eligible_subset_only_yields_members(self):
        eligible = np.array([1, 4, 7, 8, 9], dtype=np.int64)
        got = sample_clients(
            eligible.size, 0.6, np.random.default_rng(0), eligible=eligible
        )
        assert set(got) <= set(eligible.tolist())
        assert np.all(np.diff(got) > 0)

    def test_bankers_rounding_is_pinned(self):
        # round(0.25 * 10) = round(2.5) = 2 under half-to-even — the
        # documented, golden-pinned cohort rule (not 3)
        got = sample_clients(10, 0.25, np.random.default_rng(0))
        assert got.size == 2
        # and half-to-even rounds 3.5 down to 4? no — to the even 4
        assert sample_clients(10, 0.35, np.random.default_rng(0)).size == 4

    def test_eligible_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="eligible"):
            sample_clients(
                4, 0.5, np.random.default_rng(0),
                eligible=np.array([1, 2], dtype=np.int64),
            )


# ----------------------------------------------------------------------
# model construction + event streams
# ----------------------------------------------------------------------
class TestModels:
    def test_static_is_inert(self):
        pop = make_population(num_clients=6, rngs=RngFactory(0))
        assert isinstance(pop, StaticPopulation)
        assert not pop.dynamic

    def test_churn_event_stream_is_deterministic(self):
        def stream():
            fed = fresh_fed(6)
            cfg = FLConfig(rounds=1, population="churn:session=2,gap=1")
            pop = make_population(cfg, 6, RngFactory(0))
            algo_stub = type("A", (), {"fed": fed})()
            pop.begin(algo_stub)
            return [(e.time, e.kind, e.client) for e in pop.events_until(10.0)]

        assert stream() == stream()
        assert len(stream()) > 0

    def test_churn_alternates_leave_return_per_client(self):
        cfg = FLConfig(rounds=1, population="churn:session=2,gap=1")
        pop = make_population(cfg, 6, RngFactory(0))
        pop.begin(type("A", (), {"fed": fresh_fed(6)})())
        events = pop.events_until(50.0)
        by_client: dict[int, list[str]] = {}
        for e in events:
            by_client.setdefault(e.client, []).append(e.kind)
        for kinds in by_client.values():
            expected = ["leave", "return"] * (len(kinds) // 2 + 1)
            assert kinds == expected[: len(kinds)]

    def test_churn_frac_zero_clients_never_leave(self):
        cfg = FLConfig(rounds=1, population="churn:churn_frac=0.001")
        pop = make_population(cfg, 6, RngFactory(0))
        pop.begin(type("A", (), {"fed": fresh_fed(6)})())
        assert pop.events_until(1e6) == []

    def test_growth_detaches_default_fifth(self):
        fed = fresh_fed(10)
        cfg = FLConfig(rounds=1, population="growth")
        pop = make_population(cfg, fed.num_clients, RngFactory(0))
        pop.begin(type("A", (), {"fed": fed})())
        assert fed.num_clients == 8
        assert list(pop.initial_roster()) == list(range(8))
        joins = pop.events_until(100.0)
        assert [e.client for e in joins] == [8, 9]
        assert all(e.kind == "join" for e in joins)

    def test_trace_parses_and_validates(self):
        fed = fresh_fed(6)
        cfg = FLConfig(rounds=1, population="trace").with_extra(
            pop_trace="1:leave:0;3:return:0;2:join:5"
        )
        pop = make_population(cfg, fed.num_clients, RngFactory(0))
        assert isinstance(pop, TracePopulation)
        pop.begin(type("A", (), {"fed": fed})())
        assert fed.num_clients == 5
        kinds = [(e.time, e.kind, e.client) for e in pop.events_until(10.0)]
        assert kinds == [(1.0, "leave", 0), (2.0, "join", 5), (3.0, "return", 0)]

    def test_trace_rejects_bad_kind_and_non_tail_joins(self):
        with pytest.raises(ValueError, match="join/leave/return"):
            make_population(
                FLConfig(rounds=1, population="trace").with_extra(
                    pop_trace="1:depart:0"
                ),
                6, RngFactory(0),
            )
        with pytest.raises(ValueError, match="id tail"):
            make_population(
                FLConfig(rounds=1, population="trace").with_extra(
                    pop_trace="1:join:2"
                ),
                6, RngFactory(0),
            )
        with pytest.raises(ValueError, match="ascending id order"):
            make_population(
                FLConfig(rounds=1, population="trace").with_extra(
                    pop_trace="1:join:5;2:join:4"
                ),
                6, RngFactory(0),
            )


# ----------------------------------------------------------------------
# static equivalence: the default population is the seed engine
# ----------------------------------------------------------------------
class TestStaticEquivalence:
    @pytest.mark.parametrize("method", ["fedavg", "fedclust"])
    def test_explicit_static_matches_default_bitwise(self, method):
        h_default, a_default = run_one(fresh_fed(), method)
        h_static, a_static = run_one(
            fresh_fed(), method, population="static"
        )
        d1, d2 = h_default.as_dict(), h_static.as_dict()
        for key in ("rounds", "accuracy", "train_loss", "cumulative_mb",
                    "upload_bytes", "download_bytes", "sim_seconds", "extras"):
            assert d1[key] == d2[key], f"{key} diverged"
        assert params_digest(a_default) == params_digest(a_static)
        assert a_static._eligible is None  # population hooks short-circuited


# ----------------------------------------------------------------------
# churn through the full engine
# ----------------------------------------------------------------------
class TestChurn:
    @pytest.mark.parametrize("scheduler", ["sync", "semisync", "buffered"])
    def test_events_fire_and_record_on_every_scheduler(self, scheduler):
        h, algo = run_one(
            fresh_fed(), "fedclust", scheduler=scheduler,
            population="churn:session=3,gap=2",
        )
        events = h.population_events()
        assert events, f"{scheduler}: churn fired no events"
        assert {e["kind"] for e in events} <= {"leave", "return"}
        # every event dict is JSON-clean and time-stamped
        for e in events:
            assert isinstance(e["t"], float) and isinstance(e["client"], int)

    def test_departed_clients_are_not_selected(self):
        fed = fresh_fed()
        cfg = FLConfig(
            rounds=8, sample_rate=0.5, local_epochs=1, batch_size=10,
            lr=0.05, eval_every=1, population="trace",
        ).with_extra(pop_trace="1:leave:0;100:return:0")
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        selected: list[int] = []
        orig = algo.select_clients

        def spy(round_idx, sample_rate=None):
            out = orig(round_idx, sample_rate)
            selected.extend(int(c) for c in out)
            return out

        algo.select_clients = spy
        algo.run()
        assert 0 not in selected

    def test_return_restores_eligibility_and_state(self):
        h, algo = run_one(
            fresh_fed(), "fedclust",
            population="trace", rounds=5,
            extra={"pop_trace": "1:leave:2;2:return:2"},
        )
        kinds = [(e["kind"], e["client"]) for e in h.population_events()]
        assert ("leave", 2) in kinds and ("return", 2) in kinds
        assert 2 in algo._eligible
        # per-cluster state survived the absence
        assert algo.cluster_of[2] >= 0

    def test_leave_never_empties_the_federation(self):
        # sessions far shorter than the run, gaps far longer: every
        # client leaves once and nobody comes back
        h, algo = run_one(
            fresh_fed(6), "fedavg", rounds=8,
            population="churn:session=0.5,gap=1000",
        )
        assert len(algo._eligible) == 1
        suppressed = [
            e for e in h.population_events("leave") if e.get("suppressed")
        ]
        assert len(suppressed) == 1  # the last leave was held back

    def test_history_json_roundtrip_with_population_events(self, tmp_path):
        h, _ = run_one(
            fresh_fed(), "fedclust",
            population="churn:session=2,gap=1",
        )
        assert h.population_events()
        path = tmp_path / "hist.json"
        save_history(h, path)
        loaded = load_history(path)
        assert [dict(r.extras) for r in loaded.records] == [
            dict(r.extras) for r in h.records
        ]
        assert loaded.population_events() == h.population_events()
        json.dumps(h.as_dict())  # strictly JSON-serializable


# ----------------------------------------------------------------------
# growth: joins through the newcomer path
# ----------------------------------------------------------------------
class TestGrowth:
    def test_setup_clusters_only_the_initial_roster(self):
        fed = fresh_fed(10)
        h, algo = run_one(
            fed, "fedclust",
            population="growth:joiners=3,join_start=100,join_every=1",
        )
        # joiners never arrived: the federation stays at 7 clients and
        # the one-shot clustering never saw the held-out tail
        assert algo.fed.num_clients == 7
        assert len(algo.cluster_of) == 7
        assert algo.cluster_centroids.shape[0] == algo.num_clusters

    @pytest.mark.parametrize("scheduler", ["sync", "semisync", "buffered"])
    def test_joiners_attach_and_get_clusters(self, scheduler):
        h, algo = run_one(
            fresh_fed(10), "fedclust", scheduler=scheduler,
            population="growth:joiners=2,join_start=1,join_every=1",
        )
        joins = h.population_events("join")
        assert [e["client"] for e in joins] == [8, 9]
        assert algo.fed.num_clients == 10
        assert len(algo.cluster_of) == 10
        for e in joins:
            assert 0 <= e["cluster"] < algo.num_clusters
        # joiners are evaluated like everyone else post-join
        assert algo.per_client_accuracy().shape == (10,)

    def test_weight_assignment_matches_offline_alg2(self):
        # the live join path and the Table-6 incorporate path agree on
        # the probe → nearest-centroid rule for the same data
        from repro.core.newcomer import probe_partial_weights

        fed = fresh_fed(10)
        h, algo = run_one(
            fed, "fedclust",
            population="growth:joiners=1,join_start=1,join_every=1",
        )
        (join,) = h.population_events("join")
        partial = probe_partial_weights(
            algo, algo.fed[9],
            epochs=algo.warmup_epochs,
            rng=algo.rngs.make("population.probe", 9),
        )
        assert algo.assign_newcomer(partial) == join["cluster"]

    def test_probe_traffic_is_metered(self):
        # identical scenario with and without the θ⁰ probe (weights vs
        # random assignment): the communication bills differ by exactly
        # one model download plus one partial upload
        spec = "growth:joiners=1,join_start=1,join_every=1,assign={}"
        h_w, a_w = run_one(
            fresh_fed(10), "fedclust", rounds=3,
            population=spec.format("weights"),
        )
        h_r, a_r = run_one(
            fresh_fed(10), "fedclust", rounds=3,
            population=spec.format("random"),
        )
        assert h_w.population_events("join") and h_r.population_events("join")
        assert a_w.comm.total_down - a_r.comm.total_down == a_w.model_bytes
        assert a_w.comm.total_up - a_r.comm.total_up == a_w.partial_bytes

    def test_random_and_coldstart_ablations(self):
        for mode in ("random", "coldstart"):
            h, algo = run_one(
                fresh_fed(10), "fedclust",
                population=f"growth:joiners=2,join_start=1,join_every=1,assign={mode}",
            )
            joins = h.population_events("join")
            assert len(joins) == 2
            for e in joins:
                assert 0 <= e["cluster"] < algo.num_clusters

    def test_growth_works_for_global_model_algorithms(self):
        h, algo = run_one(
            fresh_fed(10), "fedavg",
            population="growth:joiners=2,join_start=1,join_every=1",
        )
        assert [e["client"] for e in h.population_events("join")] == [8, 9]
        assert "cluster" not in h.population_events("join")[0]
        assert algo.fed.num_clients == 10

    @pytest.mark.skipif(not HAS_FORK, reason="no fork start method")
    def test_process_backend_rejects_joins(self):
        fed = fresh_fed(10)
        cfg = FLConfig(
            rounds=2, sample_rate=0.5, local_epochs=1, batch_size=10,
            lr=0.05, backend="process", workers=2,
            population="growth:joiners=2",
        )
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        with pytest.raises(RuntimeError, match="shared-memory backend"):
            algo.run()

    def test_seeded_weights_match_or_beat_random_assignment(self):
        # the acceptance scenario: weight-driven newcomer assignment vs
        # the random ablation, same seeds, same churned federation
        def final_acc(mode):
            accs = []
            for seed in (0, 1):
                h, _ = run_one(
                    fresh_fed(10), "fedclust", seed=seed, rounds=8,
                    population=(
                        "churn:session=6,gap=2,joiners=2,join_start=2,"
                        f"join_every=2,assign={mode}"
                    ),
                )
                accs.append(h.final_accuracy())
            return float(np.mean(accs))

        assert final_acc("weights") >= final_acc("random")


# ----------------------------------------------------------------------
# dataset plumbing: detach / attach and the partition tail split
# ----------------------------------------------------------------------
class TestDatasetPlumbing:
    def test_detach_then_attach_restores_roster(self):
        fed = fresh_fed(8)
        sizes = fed.partition.sizes().tolist()
        pool = fed.detach_joiners(3)
        assert fed.num_clients == 5
        assert [c.client_id for c in pool] == [5, 6, 7]
        assert fed.partition.num_clients == 5
        for client in pool:
            fed.attach(client)
        assert fed.num_clients == 8
        assert fed.partition.num_clients == 8
        assert fed.partition.sizes().tolist() == sizes

    def test_attach_rejects_non_contiguous_ids(self):
        fed = fresh_fed(8)
        pool = fed.detach_joiners(2)
        with pytest.raises(ValueError, match="contiguity"):
            fed.attach(pool[1])  # id 7 before id 6

    def test_detach_bounds(self):
        fed = fresh_fed(4)
        with pytest.raises(ValueError):
            fed.detach_joiners(0)
        with pytest.raises(ValueError):
            fed.detach_joiners(4)

    def test_partition_split_tail(self):
        fed = fresh_fed(8)
        head, tail = fed.partition.split_tail(3)
        assert head.num_clients == 5 and tail.num_clients == 3
        assert head.scheme == tail.scheme == fed.partition.scheme
        # label sets stay full-size (indexed by preserved client id)
        assert len(head.client_label_sets) == 8
        with pytest.raises(ValueError):
            fed.partition.split_tail(8)

    def test_ground_truth_groups_survive_detach(self):
        fed = fresh_fed(8)
        before = fed.ground_truth_groups()
        fed.detach_joiners(2)
        after = fed.ground_truth_groups()
        # group labels are renumbered by first appearance, but the
        # grouping of the remaining clients is unchanged
        assert after is not None and after.shape == (6,)
        for i in range(6):
            for j in range(6):
                assert (before[i] == before[j]) == (after[i] == after[j])


# ----------------------------------------------------------------------
# empty rounds: all-clients-cut must still commit a well-defined record
# ----------------------------------------------------------------------
class TestEmptyRounds:
    @pytest.mark.parametrize("scheduler", ["sync", "semisync"])
    @pytest.mark.parametrize("method", ["fedavg", "fedclust", "ifca"])
    def test_deadline_cutting_everyone_commits_records(self, scheduler, method):
        # uniform network round trips are ~0.1s+; a 1ns deadline cuts all
        h, algo = run_one(
            fresh_fed(6), method, rounds=3, scheduler=scheduler,
            network="uniform", deadline=1e-9,
        )
        assert len(h.records) == 3
        for r in h.records:
            assert r.extras.get("deadline_dropped"), "no one was cut?"
            assert np.isfinite(r.accuracy) and np.isfinite(r.train_loss)
            assert r.sim_seconds >= 0.0
        # nothing was aggregated, so the model never moved
        first = h.records[0]
        assert all(r.accuracy == first.accuracy for r in h.records)

    @pytest.mark.parametrize("method", ["fedavg", "fedclust"])
    def test_buffered_empty_flushes_commit_records(self, method):
        # near-zero availability: whole cohorts drop out, flushes empty
        h, algo = run_one(
            fresh_fed(6), method, rounds=3, scheduler="buffered",
            network="flaky", extra={"net_availability": 1e-9},
        )
        assert len(h.records) >= 1
        for r in h.records:
            assert np.isfinite(r.accuracy)

    def test_sync_empty_round_does_not_move_global_params(self):
        fed = fresh_fed(6)
        cfg = FLConfig(
            rounds=2, sample_rate=0.5, local_epochs=1, batch_size=10,
            lr=0.05, network="uniform", deadline=1e-9,
        )
        algo = build_algorithm("fedavg", fed, model_fn_for(fed), cfg, seed=0)
        algo.run()
        # every upload was cut, so the global model is still θ⁰
        untouched = build_algorithm(
            "fedavg", fresh_fed(6), model_fn_for(fed), cfg, seed=0
        )
        untouched.setup()
        np.testing.assert_array_equal(
            algo.global_params, untouched.global_params
        )
