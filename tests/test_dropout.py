"""Tests for client-dropout simulation (unreliable clients, paper §4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FedAvg, FedClust, FLConfig, build_federated_dataset, make_dataset, mlp


@pytest.fixture(scope="module")
def fed():
    ds = make_dataset("cifar10", seed=0, n_samples=400, size=8)
    return build_federated_dataset(ds, "label_skew", num_clients=8, frac_labels=0.3, rng=0)


def model_fn_for(fed):
    return lambda rng: mlp(fed.num_classes, fed.input_shape, hidden=16, rng=rng)


class TestDropout:
    def test_validation(self):
        with pytest.raises(ValueError):
            FLConfig(dropout_rate=1.0)
        with pytest.raises(ValueError):
            FLConfig(dropout_rate=-0.1)

    def test_training_survives_heavy_dropout(self, fed):
        cfg = FLConfig(
            rounds=4, sample_rate=1.0, local_epochs=1, lr=0.05, dropout_rate=0.7
        )
        h = FedAvg(fed, model_fn_for(fed), cfg, seed=0).run()
        assert len(h) == 4
        assert np.isfinite(h.accuracies).all()

    def test_dropout_reduces_uploads_not_downloads(self, fed):
        base_cfg = FLConfig(rounds=4, sample_rate=1.0, local_epochs=1, lr=0.05)
        drop_cfg = FLConfig(
            rounds=4, sample_rate=1.0, local_epochs=1, lr=0.05, dropout_rate=0.5
        )
        base = FedAvg(fed, model_fn_for(fed), base_cfg, seed=0)
        drop = FedAvg(fed, model_fn_for(fed), drop_cfg, seed=0)
        base.run()
        drop.run()
        assert drop.comm.total_down == base.comm.total_down
        assert drop.comm.total_up < base.comm.total_up

    def test_dropout_deterministic(self, fed):
        cfg = FLConfig(
            rounds=3, sample_rate=1.0, local_epochs=1, lr=0.05, dropout_rate=0.4
        )
        h1 = FedAvg(fed, model_fn_for(fed), cfg, seed=2).run()
        h2 = FedAvg(fed, model_fn_for(fed), cfg, seed=2).run()
        np.testing.assert_array_equal(h1.accuracies, h2.accuracies)
        np.testing.assert_array_equal(h1.cumulative_mb, h2.cumulative_mb)

    def test_fedclust_clusters_survive_dropout(self, fed):
        """Dropouts have no impact on their cluster's training (paper §4.2:
        'clients who quit the training have no impact')."""
        cfg = FLConfig(
            rounds=4, sample_rate=1.0, local_epochs=1, lr=0.05, dropout_rate=0.5
        ).with_extra(lam="auto")
        algo = FedClust(fed, model_fn_for(fed), cfg, seed=0)
        h = algo.run()
        assert len(h) == 4
        assert algo.num_clusters >= 2

    def test_zero_dropout_matches_default(self, fed):
        cfg0 = FLConfig(rounds=2, sample_rate=0.5, local_epochs=1, lr=0.05)
        cfg1 = FLConfig(rounds=2, sample_rate=0.5, local_epochs=1, lr=0.05, dropout_rate=0.0)
        h0 = FedAvg(fed, model_fn_for(fed), cfg0, seed=1).run()
        h1 = FedAvg(fed, model_fn_for(fed), cfg1, seed=1).run()
        np.testing.assert_array_equal(h0.accuracies, h1.accuracies)
