"""Unit tests for FedClust's partial-weight selection (paper §4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weight_selection import (
    SELECTION_STRATEGIES,
    select_weights,
    selection_nbytes,
)
from repro.nn import flatten_params, layer_slices, lenet5, mlp


@pytest.fixture
def model():
    return lenet5(10, input_shape=(3, 16, 16), rng=0)


class TestSelectWeights:
    def test_final_is_head_weights(self, model):
        v = select_weights(model, "final")
        head = model.final_parametric_layer()
        expected = np.concatenate([p.data.ravel() for p in head.parameters()])
        np.testing.assert_allclose(v, expected, rtol=1e-6)

    def test_first_is_first_layer(self, model):
        v = select_weights(model, "first")
        flat = flatten_params(model)
        _, first_slice = layer_slices(model)[0]
        np.testing.assert_allclose(v, flat[first_slice])

    def test_all_is_everything(self, model):
        v = select_weights(model, "all")
        np.testing.assert_allclose(v, flatten_params(model))

    def test_last_k_concatenates_tail_layers(self, model):
        v = select_weights(model, "last_k", k=2)
        slices = layer_slices(model)
        flat = flatten_params(model)
        expected = flat[slices[-2][1].start : slices[-1][1].stop]
        np.testing.assert_allclose(v, expected)

    def test_last_k_full_model(self, model):
        k = len(layer_slices(model))
        v = select_weights(model, "last_k", k=k)
        np.testing.assert_allclose(v, flatten_params(model))

    def test_last_k_validation(self, model):
        with pytest.raises(ValueError):
            select_weights(model, "last_k", k=0)
        with pytest.raises(ValueError):
            select_weights(model, "last_k", k=99)

    def test_unknown_strategy(self, model):
        with pytest.raises(ValueError, match="available"):
            select_weights(model, "middle")

    def test_strategy_registry_consistent(self, model):
        for s in SELECTION_STRATEGIES:
            v = select_weights(model, s, k=2)
            assert v.ndim == 1 and v.size > 0


class TestSelectionBytes:
    def test_sizes_ordered(self, model):
        final = selection_nbytes(model, "final")
        last2 = selection_nbytes(model, "last_k", k=2)
        everything = selection_nbytes(model, "all")
        assert final < last2 < everything

    def test_bytes_match_vector_length(self, model):
        # float32 model: 4 bytes per selected weight
        v = select_weights(model, "final")
        assert selection_nbytes(model, "final") == v.size * 4

    def test_final_layer_fraction_is_small(self, model):
        # The paper's motivation: the classifier head is a tiny fraction of
        # the model (VGG16: head is <1%; LeNet-5 here: well under half).
        frac = selection_nbytes(model, "final") / selection_nbytes(model, "all")
        assert frac < 0.25

    def test_mlp_head_selection(self):
        m = mlp(5, input_shape=(1, 4, 4), hidden=8, rng=0)
        v = select_weights(m, "final")
        assert v.size == 8 * 5 + 5
