"""Telemetry: zero-cost default, replay equivalence, spans, metrics, CLI.

The contract under test (fl/telemetry.py): observation never changes a
run.  Telemetry is off by default (the engine holds the shared no-op
singleton); switched on, the history must equal the disabled run's
bit-for-bit (modulo the added ``extras["metrics"]`` snapshots and host
wall-clock), and :func:`repro.fl.telemetry.replay_history` must rebuild
the **full** live history — wall-clock seconds included — from the
typed event log alone, in memory or through the JSONL file.

Layers:

* ``TestDefaultOff`` — the default run carries ``NULL_TELEMETRY`` and
  no metrics extras; resolution honors config field, spec, and env.
* ``TestReplayEquivalence`` — schedulers x populations with telemetry
  on: off-vs-on canonical equality + exact replay (memory and file).
* ``TestGoldenReplay`` — every pinned golden-registry case rerun with
  telemetry on still matches its capture, and replays exactly.
* ``TestReplayProperty`` — Hypothesis: randomized short runs across
  scheduler/network/codec/population/dropout/seed replay exactly.
* ``TestSpansAndTrace`` — span taxonomy, event schema, Chrome-trace
  export shape.
* ``TestMetrics`` — registry unit semantics + counters vs history sums.
* ``TestCheckpointInterplay`` — telemetry stays out of checkpoint state
  and fingerprints; runs may resume with it toggled either way.
* ``TestCLI`` — ``--telemetry on`` end-to-end + the ``trace`` inspector
  + the ``progress`` live stream.
"""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from golden import canonical_history
from repro.algorithms import build_algorithm
from repro.data import build_federated_dataset, make_dataset
from repro.experiments.__main__ import main
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.runner import build_cell, resume_cell
from repro.fl.checkpoint import run_fingerprint
from repro.fl.config import FLConfig
from repro.fl.telemetry import (
    EVENT_TYPES,
    NULL_TELEMETRY,
    MetricsRegistry,
    Telemetry,
    load_events,
    make_telemetry,
    replay_history,
)
from repro.nn.models import mlp
from test_registry import TestGoldenEquivalence

ROUNDS = 3

#: wall-clock span names each scheduler's run must have traced
EXPECTED_SPANS = {
    "sync": {"setup", "round", "wire_down", "execute", "wire_up",
             "aggregate", "eval"},
    "semisync": {"setup", "round", "wire_down", "execute", "wire_up",
                 "aggregate", "eval"},
    "buffered": {"setup", "dispatch", "execute", "merge", "eval"},
}


def _cell(config_overrides=None, extra_overrides=None, fl_options=None,
          method="fedavg", seed=0):
    overrides = {"rounds": ROUNDS, **(config_overrides or {})}
    return build_cell(
        "cifar10", method, "label_skew_20", SMOKE_SCALE, seed=seed,
        config_overrides=overrides, extra_overrides=extra_overrides,
        fl_options=fl_options,
    )


def _strip_metrics(d: dict) -> dict:
    """Canonical dict minus the telemetry-only ``metrics`` extras."""
    d = dict(d)
    d["extras"] = [
        {k: v for k, v in extras.items() if k != "metrics"}
        for extras in d["extras"]
    ]
    return d


def _jsonable(d: dict) -> dict:
    return json.loads(json.dumps(d))


def _assert_replays_exactly(history, telemetry, events_path=None):
    """In-memory (and optionally file-based) replay == live ``as_dict``."""
    live = _jsonable(history.as_dict())
    assert replay_history(telemetry.events).as_dict() == live
    if events_path is not None:
        assert replay_history(load_events(events_path)).as_dict() == live


class TestDefaultOff:
    def test_default_run_is_unobserved(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        algo = _cell()
        history = algo.run()
        assert algo.telemetry is NULL_TELEMETRY
        assert not algo.telemetry.enabled
        assert all("metrics" not in r.extras for r in history.records)

    def test_resolution_paths(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert make_telemetry(FLConfig()) is NULL_TELEMETRY
        assert make_telemetry(FLConfig(telemetry="off")) is NULL_TELEMETRY
        on = make_telemetry(FLConfig(telemetry="on"))
        assert isinstance(on, Telemetry) and on.enabled
        spec = make_telemetry(telemetry="on:progress=2")
        assert spec.progress == 2
        monkeypatch.setenv("REPRO_TELEMETRY", "on")
        assert make_telemetry(FLConfig()).enabled
        monkeypatch.setenv("REPRO_TELEMETRY_PROGRESS", "3")
        assert make_telemetry(FLConfig()).progress == 3

    def test_null_telemetry_api_is_inert(self):
        tele = NULL_TELEMETRY
        with tele.span("x", client=1):
            pass
        tele.vspan("trip", 0.0, 1.0)
        tele.emit("arrival", client=0)
        tele.count("bytes_up", 10)
        tele.observe("staleness", 1.0)
        tele.gauge("roster_size", 4)
        tele.record(None)
        tele.begin_run(None)
        tele.finish()
        assert tele.events == ()
        assert tele.metrics_snapshot() == {}


#: (case id, fl_options) — one per scheduler, with dynamic populations
REPLAY_CASES = {
    "sync-static": {"scheduler": "sync", "population": "static"},
    "semisync-churn-stragglers": {
        "scheduler": "semisync", "network": "stragglers",
        "population": "churn", "over_select_frac": 0.5,
    },
    "buffered-growth-stragglers": {
        "scheduler": "buffered", "network": "stragglers",
        "population": "growth", "buffer_size": 2,
    },
}


class TestReplayEquivalence:
    @pytest.mark.parametrize("case", sorted(REPLAY_CASES))
    def test_on_vs_off_and_replay(self, case, tmp_path):
        fl_options = REPLAY_CASES[case]
        baseline = canonical_history(_cell(fl_options=fl_options).run())

        algo = _cell(
            {"telemetry": "on"}, {"tele_dir": str(tmp_path / case)},
            fl_options=fl_options,
        )
        history = algo.run()

        # observation leaves the trajectory untouched
        assert _strip_metrics(canonical_history(history)) == baseline
        # every committed record carries its metrics snapshot
        assert all("metrics" in r.extras for r in history.records)
        # the event log alone rebuilds the full live history
        _assert_replays_exactly(
            history, algo.telemetry, tmp_path / case / "events.jsonl"
        )

    def test_eval_every_accumulates_between_records(self, tmp_path):
        """Granular events spanning several rounds fold into one record."""
        algo = _cell(
            {"telemetry": "on", "rounds": 4, "eval_every": 2},
            {"tele_events_out": str(tmp_path / "ev.jsonl")},
            fl_options={"network": "stragglers", "deadline": 40.0},
        )
        history = algo.run()
        assert len(history.records) == 2
        _assert_replays_exactly(history, algo.telemetry, tmp_path / "ev.jsonl")


class TestGoldenReplay:
    """Acceptance gate: every pinned golden config, telemetry on.

    The run must (a) still match its pre-telemetry pinned capture —
    proof the subsystem never perturbs any scheduler/codec/network
    combination the suite pins — and (b) replay bit-identically from
    the JSONL event log alone.
    """

    @pytest.mark.parametrize("case", sorted(TestGoldenEquivalence.CASES))
    def test_golden_with_telemetry_replays(
        self, case, tmp_path, golden_compare
    ):
        method, cfg_kw, extra, *rest = TestGoldenEquivalence.CASES[case]
        fed = TestGoldenEquivalence._fed(rest[0] if rest else "label_skew")
        cfg = FLConfig(
            rounds=3, sample_rate=0.6, local_epochs=1, batch_size=10,
            lr=0.05, eval_every=1, telemetry="on", **cfg_kw
        ).with_extra(tele_events_out=str(tmp_path / "ev.jsonl"), **extra)

        def model_fn(rng):
            return mlp(fed.num_classes, fed.input_shape, hidden=16, rng=rng)

        algo = build_algorithm(method, fed, model_fn, cfg, seed=0)
        history = algo.run()
        _assert_replays_exactly(history, algo.telemetry, tmp_path / "ev.jsonl")
        for rec in history.records:
            rec.extras.pop("metrics", None)
        golden_compare("golden_registry.json", case, algo, history)


class TestReplayProperty:
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scheduler=st.sampled_from(["sync", "semisync", "buffered"]),
        network=st.sampled_from(["ideal", "stragglers", "flaky"]),
        codec=st.sampled_from(["none", "int8"]),
        population=st.sampled_from(["static", "churn"]),
        dropout=st.sampled_from([0.0, 0.25]),
        seed=st.integers(min_value=0, max_value=3),
        rounds=st.integers(min_value=2, max_value=3),
    )
    def test_random_short_runs_replay_exactly(
        self, scheduler, network, codec, population, dropout, seed, rounds
    ):
        algo = _cell(
            {"telemetry": "on", "rounds": rounds,
             "dropout_rate": dropout},
            fl_options={"scheduler": scheduler, "network": network,
                        "codec": codec, "population": population},
            seed=seed,
        )
        history = algo.run()
        _assert_replays_exactly(history, algo.telemetry)


class TestSpansAndTrace:
    @pytest.mark.parametrize("scheduler", sorted(EXPECTED_SPANS))
    def test_span_taxonomy(self, scheduler, tmp_path):
        algo = _cell(
            {"telemetry": "on",
             "checkpoint_every": 2,
             "checkpoint_dir": str(tmp_path / "cks")},
            fl_options={"scheduler": scheduler, "network": "stragglers"},
        )
        algo.run()
        tele = algo.telemetry
        names = {s["name"] for s in tele.spans}
        assert EXPECTED_SPANS[scheduler] <= names
        assert "checkpoint" in names
        # codec spans appear whenever a lossy codec runs (separate case
        # below); here the identity codec must still produce trip vspans
        assert {v["name"] for v in tele.vspans} == {"trip"}
        assert all(v["t1"] >= v["t0"] for v in tele.vspans)

    def test_codec_spans(self):
        algo = _cell({"telemetry": "on"}, fl_options={"codec": "int8"})
        algo.run()
        names = {s["name"] for s in algo.telemetry.spans}
        assert {"encode", "decode"} <= names

    def test_event_schema(self):
        algo = _cell({"telemetry": "on"})
        algo.run()
        events = algo.telemetry.events
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert {e["type"] for e in events} <= set(EVENT_TYPES)
        assert events[0]["type"] == "run_start"
        assert events[-1] == {
            "type": "run_end", "seq": len(events) - 1, "records": ROUNDS,
        }

    def test_chrome_trace_shape(self, tmp_path):
        algo = _cell(
            {"telemetry": "on"}, {"tele_trace_out": str(tmp_path / "t.json")}
        )
        algo.run()
        trace = json.loads((tmp_path / "t.json").read_text())
        assert trace == _jsonable(algo.telemetry.chrome_trace())
        events = trace["traceEvents"]
        # two metadata lanes: wall clock (pid 1) and virtual clock (pid 2)
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {1, 2}
        spans = [e for e in events if e["ph"] == "X"]
        assert spans and all(
            e["dur"] >= 0 and e["pid"] in (1, 2) for e in spans
        )

    def test_metrics_csv_sink(self, tmp_path):
        algo = _cell(
            {"telemetry": "on"}, {"tele_metrics_out": str(tmp_path / "m.csv")}
        )
        algo.run()
        lines = (tmp_path / "m.csv").read_text().splitlines()
        assert lines[0] == "kind,name,stat,value"
        assert any(line.startswith("counter,bytes_up,") for line in lines)


class TestMetrics:
    def test_registry_scopes(self):
        m = MetricsRegistry()
        m.count("a")
        m.count("a", 2)
        m.observe("h", 1.0)
        m.observe("h", 3.0)
        m.gauge("g", 7.0)
        snap = m.round_snapshot()
        assert snap["counters"] == {"a": 3}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"] == {
            "count": 2, "max": 3.0, "mean": 2.0, "min": 1.0, "sum": 4.0,
        }
        # the record scope drained; the cumulative scope did not
        m.count("a")
        assert m.round_snapshot()["counters"] == {"a": 1}
        assert m.totals()["counters"] == {"a": 4}

    def test_counters_match_history_sums(self):
        algo = _cell({"telemetry": "on"})
        history = algo.run()
        totals = algo.telemetry.metrics.totals()["counters"]
        assert totals["bytes_up"] == int(np.sum(history.upload_bytes))
        assert totals["bytes_down"] == int(np.sum(history.download_bytes))

    def test_record_deltas_sum_to_totals(self):
        algo = _cell({"telemetry": "on"})
        history = algo.run()
        per_round = [
            r.extras["metrics"]["counters"].get("bytes_up", 0)
            for r in history.records
        ]
        totals = algo.telemetry.metrics.totals()["counters"]
        assert sum(per_round) == totals["bytes_up"]


class TestCheckpointInterplay:
    def test_telemetry_not_in_checkpoint_state(self, tmp_path):
        algo = _cell(
            {"telemetry": "on", "checkpoint_every": 1,
             "checkpoint_dir": str(tmp_path)},
        )
        algo.run()
        assert "telemetry" not in algo.checkpoint_state()

    def test_fingerprint_ignores_tele_keys(self):
        plain = _cell()
        observed = _cell(
            {"telemetry": "on"},
            {"tele_dir": "/tmp/somewhere", "tele_progress": 5},
        )
        assert run_fingerprint(plain) == run_fingerprint(observed)

    def test_resume_toggles_telemetry_both_ways(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        baseline = canonical_history(_cell().run())
        algo = _cell(
            {"checkpoint_every": 1, "checkpoint_dir": str(tmp_path / "cks")},
        )
        algo.run()

        # checkpointed without telemetry, resumed with it (env toggle —
        # tele_* knobs stay out of the fingerprint, so this must load)
        monkeypatch.setenv("REPRO_TELEMETRY", "on")
        res = resume_cell(str(tmp_path / "cks" / "latest.ckpt"))
        assert res.algorithm.telemetry.enabled
        assert _strip_metrics(canonical_history(res.history)) == baseline

        # and the other direction: observed run (via the same env
        # toggle, so the stored provenance stays telemetry-neutral),
        # plain resume
        algo2 = _cell(
            {"checkpoint_every": 1, "checkpoint_dir": str(tmp_path / "cks2")},
        )
        algo2.run()
        monkeypatch.delenv("REPRO_TELEMETRY")
        res2 = resume_cell(str(tmp_path / "cks2" / "latest.ckpt"))
        assert not res2.algorithm.telemetry.enabled
        assert _strip_metrics(
            canonical_history(res2.history)
        ) == baseline


class TestCLI:
    def test_telemetry_flags_end_to_end(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        rc = main([
            "table1", "--scale", "smoke", "--dataset", "cifar10",
            "--telemetry", "on", "--telemetry-dir", str(run_dir),
        ])
        assert rc == 0
        capsys.readouterr()
        assert (run_dir / "events.jsonl").exists()
        assert (run_dir / "metrics.json").exists()
        assert (run_dir / "trace.json").exists()

        rc = main(["trace", str(run_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "event log" in out
        assert "round" in out

    def test_trace_accepts_events_file(self, tmp_path, capsys):
        algo = _cell(
            {"telemetry": "on"},
            {"tele_events_out": str(tmp_path / "ev.jsonl")},
        )
        algo.run()
        assert main(["trace", str(tmp_path / "ev.jsonl")]) == 0
        assert "records" in capsys.readouterr().out

    def test_trace_requires_target_and_rejects_junk(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["trace"])
        capsys.readouterr()
        assert main(["trace", str(tmp_path / "nope")]) == 1
        assert "no event log" in capsys.readouterr().err

    def test_progress_stream(self, caplog):
        algo = _cell(fl_options={"telemetry": "on:progress=1"})
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            algo.run()
        lines = [
            r.getMessage() for r in caplog.records
            if r.name == "repro.telemetry"
        ]
        assert len(lines) == ROUNDS
        assert all("accuracy=" in line for line in lines)

    def test_on_record_hook(self):
        """An injected Telemetry (the live front-end path) survives run()."""
        algo = _cell()
        seen = []
        algo.telemetry = make_telemetry(telemetry="on")
        algo.telemetry.on_record = seen.append
        history = algo.run()
        assert seen == list(history.records)
