"""Tests for newcomer incorporation (paper Alg. 2 / Table 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FedClust,
    FLConfig,
    build_federated_dataset,
    incorporate_newcomer,
    incorporate_newcomers,
    make_dataset,
    mlp,
)
from repro.data import grouped_label_partition


@pytest.fixture(scope="module")
def trained_federation():
    """A finished 2-group FedClust federation plus held-out newcomers."""
    ds = make_dataset("cifar10", seed=0, n_samples=800, size=8)
    fed = grouped_label_partition(ds, [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]], 6, rng=0)
    base, newcomers = fed.split_newcomers(2)  # last 2 clients of group 2
    cfg = FLConfig(rounds=4, sample_rate=1.0, local_epochs=2, lr=0.1).with_extra(lam=1e9)
    model_fn = lambda rng: mlp(fed.num_classes, fed.input_shape, hidden=24, rng=rng)
    algo = FedClust(base, model_fn, cfg, seed=0)
    # force exactly two clusters by cutting the dendrogram at k=2
    algo.setup()
    algo.init_clusters(algo.dendrogram.cut_k(2))
    partials = np.stack(
        [algo.client_partial_weights(cid) for cid in range(base.num_clients)]
    )
    algo.cluster_centroids = np.stack(
        [partials[algo.cluster_of == g].mean(axis=0) for g in range(algo.num_clusters)]
    )
    algo.setup = lambda: None  # already set up; run() must not redo it
    algo.run()
    return algo, base, newcomers


class TestNewcomer:
    def test_newcomer_joins_correct_cluster(self, trained_federation):
        algo, base, newcomers = trained_federation
        # Newcomers come from group 2 (labels 5-9); find which cluster the
        # group-2 veterans landed in.
        truth = base.ground_truth_groups()
        group2_cluster = int(np.bincount(algo.cluster_of[truth == 1]).argmax())
        res = incorporate_newcomer(algo, newcomers[0], personalize_epochs=2, rng=0)
        assert res.assigned_cluster == group2_cluster

    def test_accuracy_is_valid(self, trained_federation):
        algo, _, newcomers = trained_federation
        res = incorporate_newcomer(algo, newcomers[0], personalize_epochs=2, rng=0)
        assert 0.0 <= res.accuracy <= 1.0

    def test_batch_incorporation(self, trained_federation):
        algo, _, newcomers = trained_federation
        results = incorporate_newcomers(algo, newcomers, personalize_epochs=1, seed=0)
        assert len(results) == 2
        assert all(0.0 <= r.accuracy <= 1.0 for r in results)

    def test_deterministic(self, trained_federation):
        algo, _, newcomers = trained_federation
        a = incorporate_newcomer(algo, newcomers[0], personalize_epochs=1, rng=5)
        b = incorporate_newcomer(algo, newcomers[0], personalize_epochs=1, rng=5)
        assert a.accuracy == b.accuracy
        assert a.assigned_cluster == b.assigned_cluster

    def test_requires_setup(self):
        ds = make_dataset("cifar10", seed=0, n_samples=200, size=8)
        fed = build_federated_dataset(ds, "iid", 4, rng=0)
        model_fn = lambda rng: mlp(10, fed.input_shape, hidden=8, rng=rng)
        algo = FedClust(fed, model_fn, FLConfig(rounds=1).with_extra(lam=1.0), seed=0)
        with pytest.raises(RuntimeError):
            incorporate_newcomer(algo, fed[0])

    def test_personalization_helps(self, trained_federation):
        """5 personalization epochs should not hurt vs 0 epochs (usually help)."""
        algo, _, newcomers = trained_federation
        r0 = incorporate_newcomer(algo, newcomers[1], personalize_epochs=0, rng=0)
        r5 = incorporate_newcomer(algo, newcomers[1], personalize_epochs=5, rng=0)
        assert r5.accuracy >= r0.accuracy - 0.15  # allow small noise
