"""Doctest targets promised by the documentation suite.

``README.md`` / ``docs/architecture.md`` point at the runnable examples in
``select_weights`` and ``proximity_matrix``; CI additionally runs

    pytest --doctest-modules src/repro/core/weight_selection.py \
                             src/repro/clustering/distance.py

This test keeps those examples green inside the plain tier-1 run too.
"""

from __future__ import annotations

import doctest

import pytest

import repro.clustering.distance
import repro.core.weight_selection

DOCTEST_MODULES = [
    repro.core.weight_selection,
    repro.clustering.distance,
]


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
