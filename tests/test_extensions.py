"""Tests for the extension baselines (SCAFFOLD, FedDyn)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FLConfig, build_algorithm, build_federated_dataset, make_dataset, mlp
from repro.algorithms import FedAvg, FedDyn, Scaffold


@pytest.fixture(scope="module")
def fed():
    ds = make_dataset("cifar10", seed=0, n_samples=400, size=8)
    return build_federated_dataset(ds, "label_skew", num_clients=8, frac_labels=0.3, rng=0)


def model_fn_for(fed):
    return lambda rng: mlp(fed.num_classes, fed.input_shape, hidden=16, rng=rng)


CFG = FLConfig(rounds=3, sample_rate=0.5, local_epochs=1, batch_size=10, lr=0.05)


class TestScaffold:
    def test_registered(self, fed):
        algo = build_algorithm("scaffold", fed, model_fn_for(fed), CFG, seed=0)
        assert isinstance(algo, Scaffold)

    def test_runs(self, fed):
        h = Scaffold(fed, model_fn_for(fed), CFG, seed=0).run()
        assert len(h) == CFG.rounds
        assert np.isfinite(h.accuracies).all()

    def test_control_variates_update(self, fed):
        algo = Scaffold(fed, model_fn_for(fed), CFG, seed=0)
        algo.run()
        # after training, at least some client controls are non-zero
        norms = [np.linalg.norm(c) for c in algo.c_client]
        assert max(norms) > 0
        assert np.linalg.norm(algo.c_global) > 0

    def test_double_communication_cost(self, fed):
        sc = Scaffold(fed, model_fn_for(fed), CFG, seed=0)
        fa = FedAvg(fed, model_fn_for(fed), CFG, seed=0)
        sc.run()
        fa.run()
        assert sc.comm.total_bytes == 2 * fa.comm.total_bytes

    def test_deterministic(self, fed):
        h1 = Scaffold(fed, model_fn_for(fed), CFG, seed=4).run()
        h2 = Scaffold(fed, model_fn_for(fed), CFG, seed=4).run()
        np.testing.assert_array_equal(h1.accuracies, h2.accuracies)

    def test_zero_controls_first_round_matches_sgd_direction(self, fed):
        """With all controls zero, the first client update is plain SGD."""
        algo = Scaffold(fed, model_fn_for(fed), CFG, seed=0)
        algo.setup()
        u = algo.client_update(0, 1)
        assert np.isfinite(u.params).all()
        assert u.steps > 0


class TestFedDyn:
    def test_registered(self, fed):
        algo = build_algorithm("feddyn", fed, model_fn_for(fed), CFG, seed=0)
        assert isinstance(algo, FedDyn)

    def test_runs(self, fed):
        h = FedDyn(fed, model_fn_for(fed), CFG, seed=0).run()
        assert len(h) == CFG.rounds
        assert np.isfinite(h.accuracies).all()

    def test_alpha_validation(self, fed):
        with pytest.raises(ValueError):
            FedDyn(fed, model_fn_for(fed), CFG.with_extra(feddyn_alpha=-1.0), seed=0)

    def test_server_correction_accumulates(self, fed):
        algo = FedDyn(fed, model_fn_for(fed), CFG, seed=0)
        algo.run()
        assert np.linalg.norm(algo.h) > 0

    def test_prev_grad_tracks_participants(self, fed):
        algo = FedDyn(fed, model_fn_for(fed), CFG, seed=0)
        algo.run()
        norms = [np.linalg.norm(g) for g in algo.prev_grad]
        assert max(norms) > 0

    def test_deterministic(self, fed):
        h1 = FedDyn(fed, model_fn_for(fed), CFG, seed=4).run()
        h2 = FedDyn(fed, model_fn_for(fed), CFG, seed=4).run()
        np.testing.assert_array_equal(h1.accuracies, h2.accuracies)


class TestExtensionsBehaviour:
    def test_extensions_learn(self, fed):
        """Both extensions should improve over their starting accuracy on a
        mild-skew federation given a few rounds."""
        cfg = FLConfig(rounds=6, sample_rate=1.0, local_epochs=2, batch_size=10, lr=0.1)
        for cls in (Scaffold, FedDyn):
            h = cls(fed, model_fn_for(fed), cfg, seed=0).run()
            assert h.final_accuracy() > 0.3, cls.name
