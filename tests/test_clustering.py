"""Tests for the clustering substrate, including scipy cross-validation."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering import (
    Dendrogram,
    adjusted_rand_index,
    agglomerative,
    condensed,
    hc_threshold_clusters,
    proximity_matrix,
    purity,
    squareform,
)


class TestDistance:
    def test_euclidean_matches_scipy(self):
        x = np.random.default_rng(0).normal(size=(12, 7))
        ours = proximity_matrix(x, "euclidean")
        theirs = ssd.squareform(ssd.pdist(x, "euclidean"))
        np.testing.assert_allclose(ours, theirs, atol=1e-10)

    def test_cosine_matches_scipy(self):
        x = np.random.default_rng(1).normal(size=(10, 5))
        ours = proximity_matrix(x, "cosine")
        theirs = ssd.squareform(ssd.pdist(x, "cosine"))
        np.testing.assert_allclose(ours, theirs, atol=1e-10)

    def test_sqeuclidean(self):
        x = np.random.default_rng(2).normal(size=(6, 3))
        np.testing.assert_allclose(
            proximity_matrix(x, "sqeuclidean"),
            proximity_matrix(x, "euclidean") ** 2,
            atol=1e-10,
        )

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="available"):
            proximity_matrix(np.zeros((3, 2)), "manhattan")

    def test_condensed_squareform_roundtrip(self):
        x = np.random.default_rng(3).normal(size=(8, 4))
        d = proximity_matrix(x)
        np.testing.assert_allclose(squareform(condensed(d), 8), d, atol=1e-12)


def _scipy_labels(x, linkage, t):
    z = sch.linkage(ssd.pdist(x), method=linkage)
    return sch.fcluster(z, t=t, criterion="distance")


class TestAgainstScipy:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_merge_heights_match_scipy(self, linkage):
        x = np.random.default_rng(4).normal(size=(15, 4))
        ours = agglomerative(proximity_matrix(x), linkage)
        theirs = sch.linkage(ssd.pdist(x), method=linkage)
        np.testing.assert_allclose(
            np.sort(ours.heights()), np.sort(theirs[:, 2]), rtol=1e-8
        )

    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flat_clusters_match_scipy(self, linkage, seed):
        x = np.random.default_rng(seed).normal(size=(20, 3))
        d = proximity_matrix(x)
        dend = agglomerative(d, linkage)
        # Cut strictly between two consecutive merge heights so the flat
        # clustering is insensitive to float tie-breaking at the boundary.
        h = np.sort(dend.heights())
        mid = len(h) // 2
        t = float((h[mid] + h[mid + 1]) / 2.0)
        ours = dend.cut(t)
        theirs = _scipy_labels(x, linkage, t)
        assert adjusted_rand_index(theirs, ours) == pytest.approx(1.0)

    @given(
        x=hnp.arrays(
            np.float64,
            st.tuples(st.integers(3, 12), st.integers(2, 4)),
            elements=st.floats(-5, 5, allow_nan=False),
        ),
        linkage=st.sampled_from(["single", "complete", "average"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_heights_match_scipy(self, x, linkage):
        # Skip degenerate inputs where all points coincide.
        if np.allclose(x, x[0]):
            return
        d = proximity_matrix(x)
        # Skip inputs with tied pairwise distances: which of two equal-height
        # merges happens first is implementation-defined (scipy's nn-chain
        # vs our ordering), and under average linkage the choice changes
        # later heights legitimately — not a correctness difference.
        pair = np.sort(d[np.triu_indices_from(d, k=1)])
        if np.any(np.diff(pair) <= 1e-9 * np.maximum(pair[1:], 1.0)):
            return
        ours = agglomerative(d, linkage)
        theirs = sch.linkage(ssd.pdist(x), method=linkage)
        # atol=1e-6: duplicate points give exactly 0 in scipy's pdist but
        # O(1e-8) in our GEMM-expansion distances (catastrophic cancellation
        # is clamped at 0 but not snapped); heights may differ by that much.
        np.testing.assert_allclose(
            np.sort(ours.heights()), np.sort(theirs[:, 2]), rtol=1e-6, atol=1e-6
        )


class TestDendrogram:
    @pytest.fixture
    def blobs(self):
        rng = np.random.default_rng(0)
        a = rng.normal([0, 0], 0.1, size=(6, 2))
        b = rng.normal([10, 0], 0.1, size=(5, 2))
        c = rng.normal([0, 10], 0.1, size=(4, 2))
        return np.concatenate([a, b, c]), np.array([0] * 6 + [1] * 5 + [2] * 4)

    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_recovers_blobs_at_threshold(self, blobs, linkage):
        x, truth = blobs
        labels = hc_threshold_clusters(proximity_matrix(x), 5.0, linkage)
        assert adjusted_rand_index(truth, labels) == pytest.approx(1.0)

    def test_cut_extremes(self, blobs):
        x, _ = blobs
        dend = agglomerative(proximity_matrix(x))
        assert dend.cut(0.0).max() + 1 == len(x)  # every point its own cluster
        assert dend.cut(np.inf).max() + 1 == 1  # one global cluster

    def test_cut_k(self, blobs):
        x, truth = blobs
        dend = agglomerative(proximity_matrix(x))
        for k in [1, 2, 3, 5, len(x)]:
            labels = dend.cut_k(k)
            assert labels.max() + 1 == k
        assert adjusted_rand_index(truth, dend.cut_k(3)) == pytest.approx(1.0)

    def test_cut_k_validation(self, blobs):
        x, _ = blobs
        dend = agglomerative(proximity_matrix(x))
        with pytest.raises(ValueError):
            dend.cut_k(0)
        with pytest.raises(ValueError):
            dend.cut_k(len(x) + 1)

    def test_num_clusters_monotone_in_threshold(self, blobs):
        x, _ = blobs
        dend = agglomerative(proximity_matrix(x))
        counts = [dend.num_clusters_at(t) for t in np.linspace(0, 15, 30)]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_monotonic_heights(self, linkage):
        x = np.random.default_rng(5).normal(size=(25, 3))
        dend = agglomerative(proximity_matrix(x), linkage)
        assert dend.is_monotonic()

    def test_single_point(self):
        dend = agglomerative(np.zeros((1, 1)))
        assert dend.n_leaves == 1
        np.testing.assert_array_equal(dend.cut(1.0), [0])

    def test_merge_sizes_sum(self):
        x = np.random.default_rng(6).normal(size=(10, 2))
        dend = agglomerative(proximity_matrix(x))
        assert dend.merges[-1, 3] == 10


class TestInputValidation:
    def test_asymmetric(self):
        d = np.array([[0, 1.0], [2.0, 0]])
        with pytest.raises(ValueError, match="symmetric"):
            agglomerative(d)

    def test_nonzero_diagonal(self):
        d = np.eye(3)
        with pytest.raises(ValueError, match="diagonal"):
            agglomerative(d)

    def test_negative_distance(self):
        d = np.zeros((2, 2))
        d[0, 1] = d[1, 0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            agglomerative(d)

    def test_unknown_linkage(self):
        with pytest.raises(ValueError, match="available"):
            agglomerative(np.zeros((2, 2)), "centroid")

    def test_nonsquare(self):
        with pytest.raises(ValueError):
            agglomerative(np.zeros((2, 3)))


class TestClusterMetrics:
    def test_ari_identical(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_ari_permutation_invariant(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_ari_random_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, 3000)
        b = rng.integers(0, 3, 3000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_purity_perfect(self):
        a = np.array([0, 0, 1, 1])
        assert purity(a, a) == 1.0

    def test_purity_single_cluster(self):
        truth = np.array([0, 0, 1, 1])
        pred = np.zeros(4, dtype=int)
        assert purity(truth, pred) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            purity(np.zeros(3, dtype=int), np.zeros(4, dtype=int))
