"""Integration tests: every algorithm end-to-end on a small federation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ALGORITHMS,
    FedAvg,
    FedClust,
    FLConfig,
    IFCA,
    Local,
    PACFL,
    build_algorithm,
    build_federated_dataset,
    make_dataset,
    mlp,
)
from repro.algorithms import CFL, FedNova, FedProx, LGFedAvg, PerFedAvg
from repro.clustering import adjusted_rand_index
from repro.data import grouped_label_partition


def make_fed(num_clients=8, n_samples=400, seed=0, scheme="label_skew", **kw):
    ds = make_dataset("cifar10", seed=seed, n_samples=n_samples, size=8)
    params = {"frac_labels": 0.2} if scheme == "label_skew" else {}
    params.update(kw)
    return build_federated_dataset(ds, scheme, num_clients=num_clients, rng=seed, **params)


def model_fn_for(fed):
    return lambda rng: mlp(fed.num_classes, fed.input_shape, hidden=24, rng=rng)


SMALL_CFG = FLConfig(
    rounds=3, sample_rate=0.5, local_epochs=1, batch_size=10, lr=0.05, eval_every=1
)


@pytest.fixture(scope="module")
def fed():
    return make_fed()


class TestAllAlgorithmsRun:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_runs_and_records_history(self, fed, name):
        cfg = SMALL_CFG.with_extra(lam=2.0, num_clusters=2, angle_threshold=20.0)
        algo = build_algorithm(name, fed, model_fn_for(fed), cfg, seed=0)
        history = algo.run()
        assert len(history) == cfg.rounds
        assert history.algorithm == name
        accs = history.accuracies
        assert ((0.0 <= accs) & (accs <= 1.0)).all()
        assert np.isfinite(history.losses).all()

    @pytest.mark.parametrize("name", ["fedavg", "fedclust", "local"])
    def test_bitwise_deterministic(self, fed, name):
        cfg = SMALL_CFG.with_extra(lam=2.0)
        h1 = build_algorithm(name, fed, model_fn_for(fed), cfg, seed=7).run()
        h2 = build_algorithm(name, fed, model_fn_for(fed), cfg, seed=7).run()
        np.testing.assert_array_equal(h1.accuracies, h2.accuracies)
        np.testing.assert_array_equal(h1.cumulative_mb, h2.cumulative_mb)

    def test_seed_changes_trajectory(self, fed):
        h1 = FedAvg(fed, model_fn_for(fed), SMALL_CFG, seed=0).run()
        h2 = FedAvg(fed, model_fn_for(fed), SMALL_CFG, seed=1).run()
        assert not np.array_equal(h1.accuracies, h2.accuracies)

    def test_run_twice_rejected(self, fed):
        algo = FedAvg(fed, model_fn_for(fed), SMALL_CFG, seed=0)
        algo.run()
        with pytest.raises(RuntimeError):
            algo.run()

    def test_unknown_algorithm(self, fed):
        with pytest.raises(KeyError, match="available"):
            build_algorithm("fedsgd", fed, model_fn_for(fed), SMALL_CFG)


class TestCommunicationAccounting:
    def test_local_costs_nothing(self, fed):
        algo = Local(fed, model_fn_for(fed), SMALL_CFG, seed=0)
        algo.run()
        assert algo.comm.total_bytes == 0

    def test_fedavg_cost_matches_model_size(self, fed):
        algo = FedAvg(fed, model_fn_for(fed), SMALL_CFG, seed=0)
        algo.run()
        # 4 clients/round * 3 rounds * (up + down) * model_bytes
        expected = 4 * 3 * 2 * algo.model_bytes
        assert algo.comm.total_bytes == expected

    def test_ifca_downloads_k_models(self, fed):
        cfg = SMALL_CFG.with_extra(num_clusters=3)
        algo = IFCA(fed, model_fn_for(fed), cfg, seed=0)
        algo.run()
        expected_down = 4 * 3 * 3 * algo.model_bytes
        assert algo.comm.total_down == expected_down

    def test_lg_transmits_less_than_fedavg(self, fed):
        lg = LGFedAvg(fed, model_fn_for(fed), SMALL_CFG.with_extra(num_local_layers=1), seed=0)
        fa = FedAvg(fed, model_fn_for(fed), SMALL_CFG, seed=0)
        lg.run()
        fa.run()
        assert lg.comm.total_bytes < fa.comm.total_bytes

    def test_fedclust_round0_uploads_partial_only(self, fed):
        cfg = SMALL_CFG.with_extra(lam=2.0)
        algo = FedClust(fed, model_fn_for(fed), cfg, seed=0)
        algo.run()
        up0, down0 = algo.comm.round_bytes(0)
        assert up0 == fed.num_clients * algo.partial_bytes
        assert down0 == fed.num_clients * algo.model_bytes
        assert algo.partial_bytes < algo.model_bytes


class TestGlobalBaselines:
    def test_fedprox_sets_default_mu(self, fed):
        algo = FedProx(fed, model_fn_for(fed), SMALL_CFG, seed=0)
        assert algo.config.extra["prox_mu"] > 0

    def test_fednova_aggregation_normalizes(self, fed):
        """FedNova with equal steps must equal FedAvg's aggregate direction."""
        algo = FedNova(fed, model_fn_for(fed), SMALL_CFG, seed=0)
        algo.setup()
        from repro.fl.server import ClientUpdate

        g = algo.global_params.copy()
        updates = [
            ClientUpdate(client_id=0, params=g + 1.0, n_samples=10, steps=5, loss=1.0),
            ClientUpdate(client_id=1, params=g - 1.0, n_samples=10, steps=5, loss=1.0),
        ]
        algo.aggregate(1, updates)
        np.testing.assert_allclose(algo.global_params, g, atol=1e-12)

    def test_fednova_unequal_steps_differ_from_fedavg(self, fed):
        from repro.fl.server import ClientUpdate

        nova = FedNova(fed, model_fn_for(fed), SMALL_CFG, seed=0)
        nova.setup()
        g = nova.global_params.copy()
        updates = [
            ClientUpdate(client_id=0, params=g + 2.0, n_samples=10, steps=10, loss=1.0),
            ClientUpdate(client_id=1, params=g - 1.0, n_samples=10, steps=1, loss=1.0),
        ]
        nova.aggregate(1, updates)
        fedavg_result = g + (2.0 - 1.0) / 2
        assert not np.allclose(nova.global_params, fedavg_result)


class TestClusteredMethods:
    def test_fedclust_recovers_ground_truth_groups(self):
        """Two disjoint label groups must be recovered by round-0 clustering."""
        ds = make_dataset("cifar10", seed=0, n_samples=600, size=8)
        fed = grouped_label_partition(ds, [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]], 5, rng=0)
        cfg = FLConfig(rounds=1, sample_rate=1.0, local_epochs=2, lr=0.1).with_extra(lam=None)
        # pick lambda from the dendrogram: cut into exactly 2 clusters
        algo = FedClust(fed, model_fn_for(fed), cfg.with_extra(lam=1e9), seed=0)
        algo.setup()
        labels = algo.dendrogram.cut_k(2)
        truth = fed.ground_truth_groups()
        assert adjusted_rand_index(truth, labels) == pytest.approx(1.0)

    def test_fedclust_lambda_extremes(self, fed):
        cfg = SMALL_CFG.with_extra(lam=0.0)
        algo = FedClust(fed, model_fn_for(fed), cfg, seed=0)
        algo.setup()
        assert algo.num_clusters == fed.num_clients  # pure personalization
        cfg2 = SMALL_CFG.with_extra(lam=1e9)
        algo2 = FedClust(fed, model_fn_for(fed), cfg2, seed=0)
        algo2.setup()
        assert algo2.num_clusters == 1  # pure globalization

    def test_fedclust_invalid_lambda(self, fed):
        with pytest.raises(ValueError):
            FedClust(fed, model_fn_for(fed), SMALL_CFG.with_extra(lam=-1.0), seed=0)

    def test_fedclust_newcomer_assignment_validation(self, fed):
        algo = FedClust(fed, model_fn_for(fed), SMALL_CFG.with_extra(lam=2.0), seed=0)
        with pytest.raises(RuntimeError):
            algo.assign_newcomer(np.zeros(3))
        algo.setup()
        with pytest.raises(ValueError):
            algo.assign_newcomer(np.zeros(3))

    def test_pacfl_forms_clusters_before_federation(self, fed):
        cfg = SMALL_CFG.with_extra(angle_threshold=30.0, p=2)
        algo = PACFL(fed, model_fn_for(fed), cfg, seed=0)
        algo.setup()
        assert algo.num_clusters >= 1
        assert algo.cluster_of.shape == (fed.num_clients,)
        up0, _ = algo.comm.round_bytes(0)
        assert up0 > 0  # singular vectors were transmitted

    def test_cfl_starts_with_one_cluster(self, fed):
        algo = CFL(fed, model_fn_for(fed), SMALL_CFG, seed=0)
        algo.setup()
        assert algo.num_clusters == 1

    def test_cfl_splits_on_synthetic_stationary_updates(self, fed):
        """Force the stationarity gates open and verify a bipartition."""
        from repro.fl.server import ClientUpdate

        cfg = SMALL_CFG.with_extra(eps1=10.0, eps2=0.0, min_cluster_size=2)
        algo = CFL(fed, model_fn_for(fed), cfg, seed=0)
        algo.setup()
        g = algo.cluster_params[0]
        updates = []
        for cid in range(8):
            direction = np.ones_like(g) if cid < 4 else -np.ones_like(g)
            updates.append(
                ClientUpdate(
                    client_id=cid, params=g + direction, n_samples=10, steps=1, loss=1.0
                )
            )
        algo.aggregate(1, updates)
        assert algo.num_clusters == 2
        groups = algo.cluster_of
        assert len(set(groups[:4])) == 1
        assert len(set(groups[4:])) == 1
        assert groups[0] != groups[7]

    def test_ifca_eval_assignment_uses_train_loss(self, fed):
        cfg = SMALL_CFG.with_extra(num_clusters=2)
        algo = IFCA(fed, model_fn_for(fed), cfg, seed=0)
        algo.run()
        assert set(np.unique(algo.cluster_of)) <= {0, 1}


class TestPersonalizedBaselines:
    def test_perfedavg_personalizes_at_eval(self, fed):
        cfg = SMALL_CFG.with_extra(alpha=0.01, personalize_epochs=1)
        algo = PerFedAvg(fed, model_fn_for(fed), cfg, seed=0)
        h = algo.run()
        assert len(h) == cfg.rounds

    def test_lg_local_layers_stay_personal(self, fed):
        cfg = SMALL_CFG.with_extra(num_local_layers=1)
        algo = LGFedAvg(fed, model_fn_for(fed), cfg, seed=0)
        algo.setup()
        p0 = algo.client_params[0].copy()
        p1 = algo.client_params[1].copy()
        # personal (local-layer) segments differ across clients at init
        local_slice = slice(0, algo._global_slice.start)
        assert not np.allclose(p0[local_slice], p1[local_slice])

    def test_lg_validation(self, fed):
        with pytest.raises(ValueError):
            LGFedAvg(fed, model_fn_for(fed), SMALL_CFG.with_extra(num_local_layers=99), seed=0)
