"""Tests for the command-line interface (python -m repro.experiments)."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import ARTIFACTS, main, run_artifact
from repro.experiments import SMOKE_SCALE


class TestCLI:
    def test_figure1_via_main(self, capsys):
        rc = main(["figure1", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "ARI" in out

    def test_table1_single_dataset(self, capsys):
        rc = main(["table1", "--scale", "smoke", "--dataset", "cifar10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fedclust" in out
        assert "CIFAR10" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_artifact_list_covers_paper(self):
        # every table (1-6) and figure (1, 3, 4) in the evaluation
        # section, plus the dynamic-population and robustness studies
        assert set(ARTIFACTS) == {
            "figure1", "table1", "table2", "table3", "figure3",
            "table4", "table5", "figure4", "table6", "population",
            "robustness",
        }

    def test_run_artifact_unknown_name(self):
        with pytest.raises(KeyError):
            run_artifact("table99", SMOKE_SCALE, (0,), ["cifar10"])

    def test_figure4_single_dataset(self, capsys):
        rc = main(["figure4", "--scale", "smoke", "--dataset", "cifar10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lambda" in out
