"""Numerical gradient checks for every layer and loss.

These are the load-bearing tests of the NN substrate: if backprop is right,
everything downstream (FL training, weight-driven clustering) rests on solid
ground.  All checks run in float64 with central differences.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
    mse_loss,
    softmax_cross_entropy,
)

RNG = np.random.default_rng(12345)
EPS = 1e-5
TOL = 1e-6


def numerical_grad(f, x: np.ndarray) -> np.ndarray:
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + EPS
        fp = f()
        x[idx] = orig - EPS
        fm = f()
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * EPS)
        it.iternext()
    return grad


def check_layer_grads(layer, x: np.ndarray, tol: float = TOL, seed_dout: int = 7):
    """Check input grads and all parameter grads of a layer via a random
    linear functional of the output (loss = sum(dout * y))."""
    dout_rng = np.random.default_rng(seed_dout)
    y = layer.forward(x, train=True)
    dout = dout_rng.normal(size=y.shape)

    def loss():
        return float((layer.forward(x, train=True) * dout).sum())

    # analytic
    for p in layer.parameters():
        p.zero_grad()
    layer.forward(x, train=True)
    dx = layer.backward(dout)

    num_dx = numerical_grad(loss, x)
    np.testing.assert_allclose(dx, num_dx, rtol=tol * 100, atol=tol)

    for p in layer.parameters():
        num_dp = numerical_grad(loss, p.data)
        np.testing.assert_allclose(p.grad, num_dp, rtol=tol * 100, atol=tol)


class TestDense:
    def test_gradcheck(self):
        layer = Dense(5, 4, RNG, dtype=np.float64)
        x = RNG.normal(size=(3, 5))
        check_layer_grads(layer, x)

    def test_grad_accumulates(self):
        layer = Dense(4, 2, RNG, dtype=np.float64)
        x = RNG.normal(size=(2, 4))
        layer.forward(x, train=True)
        layer.backward(np.ones((2, 2)))
        g1 = layer.w.grad.copy()
        layer.forward(x, train=True)
        layer.backward(np.ones((2, 2)))
        np.testing.assert_allclose(layer.w.grad, 2 * g1)

    def test_shape_validation(self):
        layer = Dense(4, 2, RNG)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5)))

    def test_backward_before_forward_raises(self):
        layer = Dense(4, 2, RNG)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 2)))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3, RNG)


class TestConv2d:
    def test_gradcheck(self):
        layer = Conv2d(2, 3, 3, RNG, stride=1, pad=1, dtype=np.float64)
        x = RNG.normal(size=(2, 2, 5, 5))
        check_layer_grads(layer, x)

    def test_gradcheck_strided_nopad(self):
        layer = Conv2d(1, 2, 3, RNG, stride=2, pad=0, dtype=np.float64)
        x = RNG.normal(size=(2, 1, 7, 7))
        check_layer_grads(layer, x)

    def test_output_shape(self):
        layer = Conv2d(3, 8, 3, RNG, pad=1)
        y = layer.forward(np.zeros((4, 3, 16, 16), dtype=np.float32))
        assert y.shape == (4, 8, 16, 16)

    def test_matches_naive_convolution(self):
        layer = Conv2d(2, 2, 3, RNG, stride=1, pad=0, dtype=np.float64)
        x = RNG.normal(size=(1, 2, 6, 6))
        y = layer.forward(x, train=False)
        # naive direct convolution
        w, b = layer.w.data, layer.b.data
        expected = np.zeros_like(y)
        for oc in range(2):
            for i in range(4):
                for j in range(4):
                    patch = x[0, :, i : i + 3, j : j + 3]
                    expected[0, oc, i, j] = (patch * w[oc]).sum() + b[oc]
        np.testing.assert_allclose(y, expected, rtol=1e-10, atol=1e-12)

    def test_rejects_wrong_channels(self):
        layer = Conv2d(3, 4, 3, RNG)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 2, 8, 8)))


class TestPooling:
    def test_maxpool_gradcheck(self):
        # Use distinct values so the argmax is stable under perturbation.
        layer = MaxPool2d(2)
        x = RNG.permutation(np.arange(2 * 2 * 4 * 4, dtype=np.float64)).reshape(2, 2, 4, 4)
        check_layer_grads(layer, x)

    def test_maxpool_values(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        y = layer.forward(x)
        np.testing.assert_allclose(y[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_gradcheck(self):
        layer = AvgPool2d(2)
        x = RNG.normal(size=(2, 3, 4, 4))
        check_layer_grads(layer, x)

    def test_avgpool_values(self):
        layer = AvgPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        y = layer.forward(x)
        np.testing.assert_allclose(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avgpool_gradcheck(self):
        layer = GlobalAvgPool2d()
        x = RNG.normal(size=(3, 4, 5, 5))
        check_layer_grads(layer, x)


class TestBatchNorm:
    def test_gradcheck_2d(self):
        layer = BatchNorm(5, dtype=np.float64)
        x = RNG.normal(size=(8, 5))
        check_layer_grads(layer, x, tol=1e-5)

    def test_gradcheck_4d(self):
        layer = BatchNorm(3, dtype=np.float64)
        x = RNG.normal(size=(4, 3, 3, 3))
        check_layer_grads(layer, x, tol=1e-5)

    def test_train_normalizes(self):
        layer = BatchNorm(4, dtype=np.float64)
        x = RNG.normal(loc=3.0, scale=2.0, size=(200, 4))
        y = layer.forward(x, train=True)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(y.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_converge(self):
        layer = BatchNorm(2, momentum=0.5, dtype=np.float64)
        x = RNG.normal(loc=1.0, size=(500, 2))
        for _ in range(30):
            layer.forward(x, train=True)
        np.testing.assert_allclose(layer.running_mean, x.mean(axis=0), atol=1e-2)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm(2, dtype=np.float64)
        x = RNG.normal(size=(50, 2))
        for _ in range(100):
            layer.forward(x, train=True)
        y_eval = layer.forward(x, train=False)
        y_train = layer.forward(x, train=True)
        np.testing.assert_allclose(y_eval, y_train, atol=0.2)

    def test_state_roundtrip(self):
        a = BatchNorm(3)
        b = BatchNorm(3)
        a.running_mean[:] = [1.0, 2.0, 3.0]
        b.load_state(a.state())
        np.testing.assert_allclose(b.running_mean, a.running_mean)


class TestResidual:
    def test_gradcheck(self):
        block = Residual(
            Conv2d(2, 2, 3, RNG, pad=1, dtype=np.float64),
            ReLU(),
            Conv2d(2, 2, 3, RNG, pad=1, dtype=np.float64),
        )
        x = RNG.normal(size=(2, 2, 4, 4))
        check_layer_grads(block, x, tol=1e-5)

    def test_shape_mismatch_raises(self):
        block = Residual(Conv2d(2, 3, 3, RNG, pad=1, dtype=np.float64))
        with pytest.raises(ValueError):
            block.forward(RNG.normal(size=(1, 2, 4, 4)))


class TestLosses:
    def test_softmax_ce_gradcheck(self):
        logits = RNG.normal(size=(6, 4))
        labels = RNG.integers(0, 4, size=6)

        def loss():
            return softmax_cross_entropy(logits, labels)[0]

        _, dlogits = softmax_cross_entropy(logits, labels)
        num = numerical_grad(loss, logits)
        np.testing.assert_allclose(dlogits, num, rtol=1e-4, atol=1e-7)

    def test_softmax_ce_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-10

    def test_softmax_ce_uniform(self):
        logits = np.zeros((4, 10))
        loss, _ = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        np.testing.assert_allclose(loss, np.log(10), rtol=1e-10)

    def test_mse_gradcheck(self):
        pred = RNG.normal(size=(5, 3))
        target = RNG.normal(size=(5, 3))

        def loss():
            return mse_loss(pred, target)[0]

        _, grad = mse_loss(pred, target)
        num = numerical_grad(loss, pred)
        np.testing.assert_allclose(grad, num, rtol=1e-5, atol=1e-8)

    def test_label_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros((4,), dtype=int))


class TestWholeModelGradcheck:
    def test_small_cnn_end_to_end(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Conv2d(1, 2, 3, rng, pad=1, dtype=np.float64),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(2 * 2 * 2, 3, rng, dtype=np.float64, classifier_head=True),
        )
        x = np.random.default_rng(1).permutation(
            np.linspace(-1, 1, 1 * 1 * 4 * 4 * 2)
        ).reshape(2, 1, 4, 4)
        labels = np.array([0, 2])

        def loss():
            return softmax_cross_entropy(model.forward(x, train=True), labels)[0]

        model.zero_grad()
        logits = model.forward(x, train=True)
        _, dlogits = softmax_cross_entropy(logits, labels)
        model.backward(dlogits)

        for p in model.parameters():
            num = numerical_grad(loss, p.data)
            np.testing.assert_allclose(p.grad, num, rtol=1e-4, atol=1e-7)
