"""Tests for synthetic data generation, partitioners, and federated containers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DATASET_SPECS,
    build_federated_dataset,
    dirichlet_partition,
    grouped_label_partition,
    iid_partition,
    label_skew_partition,
    make_dataset,
    make_partition,
    make_prototypes,
    quantity_skew_partition,
    sample_class_images,
    smooth_field,
)
from repro.utils.maths import label_histogram


class TestSynthetic:
    def test_smooth_field_shape_and_smoothness(self):
        rng = np.random.default_rng(0)
        f = smooth_field(rng, (3, 16, 16), coarse=3)
        assert f.shape == (3, 16, 16)
        # Smooth: adjacent-pixel diffs much smaller than white noise's.
        d = np.abs(np.diff(f, axis=2)).mean()
        white = np.abs(np.diff(rng.normal(size=(3, 16, 16)), axis=2)).mean()
        assert d < white / 2

    def test_prototypes_are_normalized(self):
        protos = make_prototypes(5, (3, 8, 8), rng=0, class_sep=2.0)
        energy = np.sqrt((protos**2).mean(axis=(1, 2, 3)))
        np.testing.assert_allclose(energy, 2.0, rtol=1e-4)

    def test_sample_labels_out_of_range(self):
        protos = make_prototypes(3, (1, 8, 8), rng=0)
        with pytest.raises(ValueError):
            sample_class_images(protos, np.array([0, 3]), rng=0)

    def test_samples_cluster_around_prototypes(self):
        protos = make_prototypes(2, (1, 8, 8), rng=0, class_sep=5.0)
        labels = np.array([0] * 50 + [1] * 50)
        x = sample_class_images(protos, labels, rng=1, noise=0.3, lowfreq_noise=0.1)
        mean0 = x[:50].mean(axis=0)
        mean1 = x[50:].mean(axis=0)
        assert np.linalg.norm(mean0 - protos[0]) < np.linalg.norm(mean0 - protos[1])
        assert np.linalg.norm(mean1 - protos[1]) < np.linalg.norm(mean1 - protos[0])


class TestDatasetRegistry:
    @pytest.mark.parametrize("name", sorted(DATASET_SPECS))
    def test_make_dataset_spec_conformance(self, name):
        ds = make_dataset(name, seed=0, n_samples=300)
        spec = DATASET_SPECS[name]
        assert ds.num_classes == spec.num_classes
        assert ds.input_shape == (spec.channels, spec.size, spec.size)
        assert len(ds) == 300
        # standardized
        assert abs(float(ds.x.mean())) < 1e-3
        assert abs(float(ds.x.std()) - 1.0) < 1e-3

    def test_balanced_label_marginal(self):
        ds = make_dataset("cifar10", seed=0, n_samples=1000)
        hist = label_histogram(ds.y, 10)
        np.testing.assert_allclose(hist, 0.1, atol=1e-3)

    def test_reproducible(self):
        a = make_dataset("fmnist", seed=7, n_samples=200)
        b = make_dataset("fmnist", seed=7, n_samples=200)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seed_changes_data(self):
        a = make_dataset("fmnist", seed=7, n_samples=200)
        b = make_dataset("fmnist", seed=8, n_samples=200)
        assert not np.array_equal(a.x, b.x)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            make_dataset("imagenet")

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            make_dataset("cifar100", n_samples=50)

    def test_subset(self):
        ds = make_dataset("svhn", seed=0, n_samples=100)
        sub = ds.subset(np.arange(10))
        assert len(sub) == 10
        np.testing.assert_array_equal(sub.y, ds.y[:10])


class TestPartitioners:
    @pytest.fixture
    def labels(self):
        return np.random.default_rng(0).integers(0, 10, size=1000)

    def test_iid_covers_everything(self, labels):
        p = iid_partition(labels, 10, rng=0)
        p.validate_disjoint(labels.size)
        assert p.sizes().sum() == labels.size
        assert p.sizes().min() >= 90

    def test_iid_is_roughly_balanced_in_labels(self, labels):
        p = iid_partition(labels, 5, rng=0)
        for ix in p.client_indices:
            hist = label_histogram(labels[ix], 10)
            assert hist.max() < 0.25  # near-uniform

    def test_label_skew_respects_label_sets(self, labels):
        p = label_skew_partition(labels, 10, frac_labels=0.2, rng=0)
        p.validate_disjoint(labels.size)
        assert p.client_label_sets is not None
        for ix, label_set in zip(p.client_indices, p.client_label_sets):
            observed = set(int(v) for v in np.unique(labels[ix]))
            assert observed <= label_set

    def test_label_skew_all_samples_assigned(self, labels):
        p = label_skew_partition(labels, 10, frac_labels=0.3, rng=1)
        assert p.sizes().sum() == labels.size

    def test_label_skew_set_size(self, labels):
        p = label_skew_partition(labels, 10, frac_labels=0.2, rng=0)
        # 20% of 10 classes = 2 labels per client (orphan repair may add one)
        for s in p.client_label_sets:
            assert 2 <= len(s) <= 3

    def test_label_skew_invalid_frac(self, labels):
        with pytest.raises(ValueError):
            label_skew_partition(labels, 10, frac_labels=0.0)

    def test_dirichlet_skew_increases_with_small_alpha(self, labels):
        skewed = dirichlet_partition(labels, 10, alpha=0.1, rng=0)
        mild = dirichlet_partition(labels, 10, alpha=100.0, rng=0)

        def het(p):
            hists = np.stack([label_histogram(labels[ix], 10) for ix in p.client_indices])
            return np.abs(hists - hists.mean(0)).sum(1).mean()

        assert het(skewed) > 2 * het(mild)

    def test_dirichlet_min_samples(self, labels):
        p = dirichlet_partition(labels, 20, alpha=0.05, rng=0, min_samples=3)
        assert p.sizes().min() >= 3

    def test_quantity_skew_unequal_sizes(self, labels):
        p = quantity_skew_partition(labels, 10, alpha=0.3, rng=0)
        sizes = p.sizes()
        assert sizes.sum() == labels.size
        assert sizes.max() > 2 * max(sizes.min(), 1)

    def test_make_partition_dispatch(self, labels):
        p = make_partition("label_skew", labels, 5, rng=0, frac_labels=0.5)
        assert p.scheme == "label_skew"
        with pytest.raises(KeyError):
            make_partition("bogus", labels, 5)

    def test_too_many_clients(self):
        with pytest.raises(ValueError):
            iid_partition(np.zeros(5, dtype=int), 10)

    @given(
        n=st.integers(100, 400),
        clients=st.integers(2, 12),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_partitions_are_exact_covers(self, n, clients, seed):
        """Any partitioner output is a disjoint cover of the sample set."""
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 7, size=n)
        for scheme, kwargs in [
            ("iid", {}),
            ("label_skew", {"frac_labels": 0.4}),
            ("dirichlet", {"alpha": 0.5}),
            ("quantity_skew", {"alpha": 1.0}),
        ]:
            p = make_partition(scheme, labels, clients, rng=seed, **kwargs)
            p.validate_disjoint(n)
            assert p.sizes().sum() == n


class TestFederatedDataset:
    def _fed(self, scheme="label_skew", **kw):
        ds = make_dataset("cifar10", seed=0, n_samples=600)
        params = {"frac_labels": 0.2} if scheme == "label_skew" else {}
        params.update(kw)
        return build_federated_dataset(ds, scheme, num_clients=10, rng=0, **params)

    def test_every_client_has_train_and_test(self):
        fed = self._fed()
        for c in fed:
            assert c.n_train >= 1
            assert c.n_test >= 1

    def test_heterogeneity_ordering(self):
        skewed = self._fed()
        ds = make_dataset("cifar10", seed=0, n_samples=600)
        iid = build_federated_dataset(ds, "iid", num_clients=10, rng=0)
        assert skewed.heterogeneity() > 3 * iid.heterogeneity()

    def test_ground_truth_groups_from_label_sets(self):
        fed = self._fed()
        groups = fed.ground_truth_groups()
        assert groups is not None
        assert groups.shape == (10,)

    def test_split_newcomers(self):
        fed = self._fed()
        base, new = fed.split_newcomers(3)
        assert len(base) == 7
        assert len(new) == 3
        assert new[0].client_id == 7

    def test_split_newcomers_validation(self):
        fed = self._fed()
        with pytest.raises(ValueError):
            fed.split_newcomers(0)
        with pytest.raises(ValueError):
            fed.split_newcomers(10)

    def test_grouped_partition_fig1_setting(self):
        ds = make_dataset("cifar10", seed=0, n_samples=600)
        fed = grouped_label_partition(
            ds, [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]], clients_per_group=5, rng=0
        )
        assert len(fed) == 10
        groups = fed.ground_truth_groups()
        np.testing.assert_array_equal(groups, [0] * 5 + [1] * 5)
        for i, c in enumerate(fed):
            observed = set(int(v) for v in np.unique(c.train_y))
            expected = {0, 1, 2, 3, 4} if i < 5 else {5, 6, 7, 8, 9}
            assert observed <= expected

    def test_grouped_partition_rejects_overlap(self):
        ds = make_dataset("cifar10", seed=0, n_samples=300)
        with pytest.raises(ValueError):
            grouped_label_partition(ds, [[0, 1], [1, 2]], clients_per_group=2)

    def test_test_fraction_validation(self):
        ds = make_dataset("cifar10", seed=0, n_samples=300)
        with pytest.raises(ValueError):
            build_federated_dataset(ds, "iid", 5, test_fraction=1.5)
