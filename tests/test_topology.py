"""Hierarchical aggregation topology + sparse client state (PR 9).

The contract under test (fl/topology.py, data/federated.py lazy path):

* ``TestFlatDefault`` / ``TestHierDegenerate`` — the default stays the
  seed data path, and ``hier`` with one edge is a pass-through that
  reproduces every pinned golden capture bit-for-bit.
* ``TestHierNumerics`` — a genuinely hierarchical run (k >= 2 edges)
  tracks the flat trajectory within float64 round-off, and the edge
  tier meters extra wire bytes.
* ``TestStreamingAccumulators`` — Hypothesis: the streaming accumulator
  API equals batch aggregation (bitwise for the buffering rules, within
  a documented tolerance for the O(1) running mean), including the
  two-tier mean-of-means the hier sink performs.
* ``TestEdgeAssignment`` — the client->edge map is a pure function of
  the run seed: stable across instances, seed-sensitive, full coverage.
* ``TestLazyShards`` — LRU page-out and ``drop_cache`` round-trip shard
  contents exactly (materialization is pure), and the resident set
  stays bounded by the cache cap.
* ``TestCheckpointUnderHier`` — resume at every boundary and SIGKILL
  crash-resume stay bit-for-bit under ``hier``; a tampered edge
  assignment or edge count is refused; a lazy federation's resident
  shard set rides the checkpoint and is re-warmed on resume.
* ``TestProcessResidency`` — forked workers materialize only the shards
  their own tasks touch (parent cache untouched), and population joins
  are rejected under the process backend.
* ``TestReplayWithTopology`` — telemetry replay stays exact with edge
  events in the log, and the trace carries edge_reduce spans.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from golden import canonical_history
from repro.algorithms import build_algorithm
from repro.data import (
    LazyFederatedDataset,
    contiguous_partition,
    make_dataset,
)
from repro.fl.aggregation import make_aggregator
from repro.fl.config import FLConfig
from repro.fl.execution import ProcessBackend, _split_chunks
from repro.fl.topology import FlatTopology, HierTopology, make_topology
from repro.nn.models import mlp
from repro.utils.rng import RngFactory
from test_checkpoint import DRIVER, ROUNDS, SRC, _baseline, _cell, \
    _checkpointed_cell
from test_registry import TestGoldenEquivalence
from test_telemetry import _assert_replays_exactly

HIER2 = {"topology": "hier:edges=2"}


def _golden_fed():
    return TestGoldenEquivalence._fed()


def _golden_cfg(**kw):
    return FLConfig(
        rounds=3, sample_rate=0.6, local_epochs=1, batch_size=10,
        lr=0.05, eval_every=1, **kw
    )


def _model_fn(fed):
    def model_fn(rng):
        return mlp(fed.num_classes, fed.input_shape, hidden=16, rng=rng)
    return model_fn


def _lazy_fed(num_clients=12, cache_clients=64, seed=0):
    ds = make_dataset("cifar10", seed=seed, n_samples=240, size=8)
    part = contiguous_partition(len(ds.y), num_clients)
    return LazyFederatedDataset(
        ds, part, test_fraction=0.25, seed=seed, cache_clients=cache_clients
    )


class TestFlatDefault:
    def test_default_resolution_is_flat(self):
        topo = make_topology(FLConfig(), num_clients=8, rngs=RngFactory(0))
        assert isinstance(topo, FlatTopology)
        assert topo.edges == 1

    def test_hier_requires_plain_combine_algorithm(self):
        fed = _golden_fed()
        cfg = _golden_cfg(topology="hier:edges=2")
        algo = build_algorithm("fednova", fed, _model_fn(fed), cfg, seed=0)
        with pytest.raises(RuntimeError, match="hierarchical"):
            algo.run()


class TestHierDegenerate:
    """``topo_edges=1``: a single edge IS the cloud — bitwise flat.

    Every pinned golden capture must reproduce with the topology set to
    the degenerate ``hier``, proof the new tier's pass-through really is
    the seed data path for all scheduler/codec/network combinations.
    """

    # fednova and the clustered methods reject a hierarchical tier by
    # design; the degenerate hier IS allowed there (edges=1 implies no
    # pre-reduction), so every golden case stays in scope.
    @pytest.mark.parametrize("case", sorted(TestGoldenEquivalence.CASES))
    def test_single_edge_matches_golden_capture(self, case, golden_compare):
        method, cfg_kw, extra, *rest = TestGoldenEquivalence.CASES[case]
        fed = TestGoldenEquivalence._fed(rest[0] if rest else "label_skew")
        cfg = _golden_cfg(topology="hier:edges=1", **cfg_kw).with_extra(**extra)
        algo = build_algorithm(method, fed, _model_fn(fed), cfg, seed=0)
        history = algo.run()
        assert algo.topology.edges == 1
        golden_compare("golden_registry.json", case, algo, history)


class TestHierNumerics:
    def test_multi_edge_tracks_flat_within_roundoff(self):
        """Weighted mean of weighted means == flat mean up to float64
        round-off, compounded over a few rounds."""
        runs = {}
        for name, topology in [("flat", "flat"), ("hier", "hier:edges=4")]:
            fed = _golden_fed()
            cfg = _golden_cfg(topology=topology)
            algo = build_algorithm("fedavg", fed, _model_fn(fed), cfg, seed=0)
            runs[name] = (algo, algo.run())
        flat_algo, flat_hist = runs["flat"]
        hier_algo, hier_hist = runs["hier"]
        np.testing.assert_allclose(
            hier_algo.global_params, flat_algo.global_params,
            rtol=1e-6, atol=1e-9,
        )
        # cohort selection is topology-blind: identical rosters per round
        for a, b in zip(flat_hist.records, hier_hist.records):
            assert list(a.extras.get("selected", ())) == list(
                b.extras.get("selected", ())
            )

    def test_edge_tier_meters_extra_wire_bytes(self):
        fed = _golden_fed()
        flat = build_algorithm(
            "fedavg", fed, _model_fn(fed), _golden_cfg(), seed=0
        )
        flat_mb = flat.run().records[-1].cumulative_mb
        fed = _golden_fed()
        hier = build_algorithm(
            "fedavg", fed, _model_fn(fed),
            _golden_cfg(topology="hier:edges=4"), seed=0,
        )
        hier_mb = hier.run().records[-1].cumulative_mb
        assert hier_mb > flat_mb, (
            "the edge->cloud hop must add metered bytes on top of the "
            "client->edge uploads"
        )


class TestStreamingAccumulators:
    """The accumulator API is the memory story: edges fold members one at
    a time and the result must equal the batch rule."""

    @staticmethod
    def _members(seed, n, dim):
        rng = np.random.default_rng(seed)
        vectors = [rng.standard_normal(dim) for _ in range(n)]
        weights = list(rng.uniform(0.5, 20.0, size=n))
        return vectors, weights

    @given(seed=st.integers(0, 2 ** 32 - 1), n=st.integers(2, 10),
           dim=st.integers(1, 24),
           rule=st.sampled_from(["median", "trimmed", "clip"]))
    @settings(max_examples=25, deadline=None)
    def test_buffering_rules_are_bitwise_batch(self, seed, n, dim, rule):
        agg = make_aggregator(aggregator=rule)
        vectors, weights = self._members(seed, n, dim)
        acc = agg.accumulator()
        for v, w in zip(vectors, weights):
            acc.update(v, w)
        streamed, _ = acc.finalize()
        batch = agg.combine(vectors, weights)
        np.testing.assert_array_equal(streamed, batch)

    @given(seed=st.integers(0, 2 ** 32 - 1), n=st.integers(2, 10),
           dim=st.integers(1, 24))
    @settings(max_examples=25, deadline=None)
    def test_running_mean_matches_batch_within_tolerance(self, seed, n, dim):
        agg = make_aggregator(aggregator="weighted")
        vectors, weights = self._members(seed, n, dim)
        acc = agg.accumulator()
        for v, w in zip(vectors, weights):
            acc.update(v, w)
        streamed, _ = acc.finalize()
        batch = agg.combine(vectors, weights)
        np.testing.assert_allclose(streamed, batch, rtol=1e-12, atol=1e-14)

    @given(seed=st.integers(0, 2 ** 32 - 1), n=st.integers(3, 12),
           dim=st.integers(1, 16), edges=st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_two_tier_mean_of_means_matches_flat(self, seed, n, dim, edges):
        """Exactly the hier sink's algebra: shard members across edges,
        stream each edge, cloud-combine the summaries by edge weight."""
        agg = make_aggregator(aggregator="weighted")
        vectors, weights = self._members(seed, n, dim)
        assignment = np.random.default_rng(seed ^ 0xE).integers(edges, size=n)
        summaries, edge_weights = [], []
        for e in range(edges):
            member_ix = np.flatnonzero(assignment == e)
            if not member_ix.size:
                continue
            acc = agg.accumulator()
            for i in member_ix:
                acc.update(vectors[i], weights[i])
            params, _ = acc.finalize()
            summaries.append(params)
            edge_weights.append(sum(weights[i] for i in member_ix))
        two_tier = agg.combine(summaries, edge_weights)
        flat = agg.combine(vectors, weights)
        np.testing.assert_allclose(two_tier, flat, rtol=1e-10, atol=1e-12)


class TestEdgeAssignment:
    def test_assignment_is_pure_and_seed_keyed(self):
        a = make_topology(
            num_clients=200, rngs=RngFactory(0), topology="hier:edges=4"
        )
        b = make_topology(
            num_clients=200, rngs=RngFactory(0), topology="hier:edges=4"
        )
        other = make_topology(
            num_clients=200, rngs=RngFactory(1), topology="hier:edges=4"
        )
        ours = [a.edge_of(c) for c in range(200)]
        assert ours == [b.edge_of(c) for c in range(200)]
        assert ours != [other.edge_of(c) for c in range(200)]
        assert set(ours) == set(range(4))  # every edge gets members

    def test_state_dict_roundtrip_and_rejection(self):
        topo = make_topology(
            num_clients=64, rngs=RngFactory(0), topology="hier:edges=4"
        )
        assert isinstance(topo, HierTopology)
        sd = topo.state_dict()
        topo.load_state_dict(sd)  # self-consistent
        topo.load_state_dict({})  # pre-topology checkpoints: nothing to do
        with pytest.raises(ValueError, match="edges"):
            topo.load_state_dict({**sd, "edges": 2})
        tampered = dict(sd)
        tampered["assign_probe"] = list(sd["assign_probe"])
        tampered["assign_probe"][0] = (tampered["assign_probe"][0] + 1) % 4
        with pytest.raises(ValueError, match="assignment"):
            topo.load_state_dict(tampered)


class TestLazyShards:
    def test_lru_page_out_rematerializes_exactly(self):
        fed = _lazy_fed(num_clients=12, cache_clients=4)
        first = fed[0]
        kept = (first.train_x.copy(), first.train_y.copy(),
                first.test_x.copy(), first.test_y.copy())
        for cid in range(1, 9):  # push client 0 out of the 4-slot cache
            fed[cid]
        assert 0 not in fed.resident_ids()
        assert fed.resident_shards() <= 4
        again = fed[0]
        np.testing.assert_array_equal(again.train_x, kept[0])
        np.testing.assert_array_equal(again.train_y, kept[1])
        np.testing.assert_array_equal(again.test_x, kept[2])
        np.testing.assert_array_equal(again.test_y, kept[3])

    def test_drop_cache_roundtrip_matches_fresh_instance(self):
        fed = _lazy_fed(num_clients=6)
        before = [fed[c] for c in range(6)]
        fed.drop_cache()
        assert fed.resident_shards() == 0
        fresh = _lazy_fed(num_clients=6)
        for c in range(6):
            np.testing.assert_array_equal(fed[c].train_x, before[c].train_x)
            np.testing.assert_array_equal(fed[c].train_y, before[c].train_y)
            np.testing.assert_array_equal(fresh[c].test_x, before[c].test_x)
            np.testing.assert_array_equal(fresh[c].test_y, before[c].test_y)

    def test_resident_set_never_exceeds_cap(self):
        fed = _lazy_fed(num_clients=12, cache_clients=3)
        rng = np.random.default_rng(7)
        for cid in rng.integers(12, size=64):
            fed[int(cid)]
            assert fed.resident_shards() <= 3


class TestCheckpointUnderHier:
    def test_resume_bitwise_at_every_boundary(self, tmp_path):
        fl_options = {**HIER2, "network": "stragglers"}
        base = _baseline(fl_options=fl_options)
        algo, saved = _checkpointed_cell(tmp_path, fl_options)
        assert canonical_history(algo.run()) == base
        boundaries = sorted(saved)[:-1]
        assert boundaries
        for r in boundaries:
            resumed = _cell({"rounds": ROUNDS}, fl_options)
            history = resumed.run(resume_from=str(saved[r]))
            assert canonical_history(history) == base, (
                f"hier resume at boundary {r} diverged"
            )

    def test_sigkill_crash_resume_is_bitwise_identical(self, tmp_path):
        from repro.experiments.runner import resume_cell
        from repro.fl.checkpoint import load_checkpoint

        fl_options = {**HIER2, "scheduler": "sync"}
        ckpt_dir = tmp_path / "cks"
        spec = {
            "dataset": "cifar10", "method": "fedavg",
            "setting": "label_skew_20", "seed": 0, "kill_at": 2,
            "config_overrides": {
                "rounds": ROUNDS, "checkpoint_every": 1,
                "checkpoint_dir": str(ckpt_dir),
            },
            "fl_options": fl_options,
        }
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(DRIVER), json.dumps(spec)],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert proc.returncode == -signal.SIGKILL, (
            f"driver should die by SIGKILL, got rc={proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
        latest = ckpt_dir / "latest.ckpt"
        ckpt = load_checkpoint(latest)
        assert ckpt.round == 2
        assert ckpt.state["topology"]["edges"] == 2
        result = resume_cell(latest)
        assert canonical_history(result.history) == _baseline(
            fl_options=fl_options
        ), "resume after SIGKILL under hier diverged"

    def test_lazy_residency_rides_the_checkpoint(self, tmp_path):
        from repro.fl.checkpoint import load_checkpoint

        def build(seed_fed):
            cfg = FLConfig(
                rounds=3, sample_rate=0.5, local_epochs=1, batch_size=10,
                lr=0.05, eval_every=1, topology="hier:edges=2",
                checkpoint_every=1, checkpoint_dir=str(tmp_path / "cks"),
            )
            return build_algorithm(
                "fedavg", seed_fed, _model_fn(seed_fed), cfg, seed=0
            )

        fed = _lazy_fed()
        algo = build(fed)
        saved = {}
        algo.on_checkpoint = lambda r, p: saved.setdefault(
            r, (tmp_path / f"r{r}.ckpt", __import__("shutil").copy(
                p, tmp_path / f"r{r}.ckpt"))[0]
        )
        base = canonical_history(algo.run())
        ckpt = load_checkpoint(saved[2])
        residency = ckpt.state.get("residency")
        assert residency, "lazy federation saved no resident shard set"
        assert set(residency) <= set(range(fed.num_clients))

        fed2 = _lazy_fed()
        algo2 = build(fed2)
        history = algo2.run(resume_from=str(saved[2]))
        assert canonical_history(history) == base
        # the crashed run's working set was re-warmed (cache is large
        # enough here that nothing paged out during the final round)
        assert set(residency) <= set(fed2.resident_ids())


class TestProcessResidency:
    """Forked workers + lazy shards: each worker materializes only what
    its own tasks touch; the parent's cache never sees worker pages."""

    @pytest.mark.skipif(
        sys.platform not in ("linux", "darwin"),
        reason="fork start method required",
    )
    def test_workers_materialize_only_their_tasks_shards(self):
        fed = _lazy_fed(num_clients=12, cache_clients=64)
        cfg = FLConfig(rounds=1, sample_rate=0.5, local_epochs=1,
                       batch_size=10, lr=0.05)
        algo = build_algorithm("fedavg", fed, _model_fn(fed), cfg, seed=0)

        def probe_residency(cid):
            shard = fed[int(cid)]
            assert shard.n_train > 0
            return sorted(int(c) for c in fed.resident_ids())

        algo.probe_residency = probe_residency
        fed.drop_cache()
        backend = ProcessBackend(workers=2)
        probe_ids = list(range(8))  # clients 8..11 are never probed
        try:
            results = backend.map(
                algo, "probe_residency", [(cid,) for cid in probe_ids]
            )
        finally:
            backend.close()
        chunks = _split_chunks(probe_ids, 2)
        pos = 0
        for chunk in chunks:
            for p, cid in enumerate(chunk):
                resident = set(results[pos])
                # a worker has at most its dispatched probe ids resident —
                # never a shard no task asked it for
                assert resident <= set(probe_ids)
                # within a chunk tasks run in order in one process, so
                # everything this chunk touched so far must be resident
                assert set(chunk[:p + 1]) <= resident
                pos += 1
        # worker materialization never leaks back into the parent cache
        assert fed.resident_shards() == 0

    def test_population_joins_rejected_under_process_backend(self):
        fed = _lazy_fed()
        cfg = FLConfig(
            rounds=2, sample_rate=0.5, local_epochs=1, batch_size=10,
            lr=0.05, backend="process",
            population="growth:joiners=2,join_start=1,join_every=1",
        )
        algo = build_algorithm("fedavg", fed, _model_fn(fed), cfg, seed=0)
        with pytest.raises(RuntimeError, match="shared-memory"):
            algo.run()


class TestReplayWithTopology:
    def test_edge_events_replay_exactly(self, tmp_path):
        fed = _golden_fed()
        cfg = _golden_cfg(
            topology="hier:edges=3", telemetry="on"
        ).with_extra(tele_events_out=str(tmp_path / "ev.jsonl"))
        algo = build_algorithm("fedavg", fed, _model_fn(fed), cfg, seed=0)
        history = algo.run()
        tele = algo.telemetry
        edge_events = [e for e in tele.events if e.get("type") == "edge"]
        assert edge_events, "hier run logged no edge events"
        assert all(
            0 <= e["edge"] < 3 and e["members"] >= 1 and e["nbytes"] > 0
            for e in edge_events
        )
        assert any(s["name"] == "edge_reduce" for s in tele.spans)
        _assert_replays_exactly(history, tele, tmp_path / "ev.jsonl")

    def test_trace_inspector_renders_edge_tier_and_gauges(self, tmp_path):
        from repro.experiments.trace_view import inspect_run

        fed = _golden_fed()
        cfg = _golden_cfg(
            topology="hier:edges=3", telemetry="on"
        ).with_extra(
            tele_events_out=str(tmp_path / "events.jsonl"),
            tele_metrics_out=str(tmp_path / "metrics.json"),
        )
        algo = build_algorithm("fedavg", fed, _model_fn(fed), cfg, seed=0)
        algo.run()
        digest = inspect_run(tmp_path)
        assert "edge tier (hierarchical topology, 3 edges):" in digest
        assert "edge_uploads" in digest
        assert "gauges" in digest and "peak_rss_mb" in digest
