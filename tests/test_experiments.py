"""Tests for the experiment harness (smoke scale: seconds, not minutes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ALL_METHODS,
    BENCH_SCALE,
    NONIID_SETTINGS,
    PAPER_SCALE,
    SMOKE_SCALE,
    block_contrast,
    figure1,
    figure3,
    figure4,
    format_accuracy_table,
    format_curves,
    format_figure1,
    format_figure4,
    format_scalar_table,
    make_federation,
    make_model_fn,
    method_extras,
    run_cell,
    table_accuracy,
    table_comm_cost,
    table_newcomers,
    table_rounds_to_target,
)


class TestConfigs:
    def test_paper_scale_matches_paper(self):
        assert PAPER_SCALE.num_clients == 100
        assert PAPER_SCALE.rounds == 200
        assert PAPER_SCALE.sample_rate == 0.1
        assert PAPER_SCALE.local_epochs == 10
        assert PAPER_SCALE.batch_size == 10

    def test_fl_config_roundtrip(self):
        cfg = SMOKE_SCALE.fl_config(rounds=5)
        assert cfg.rounds == 5
        assert cfg.batch_size == SMOKE_SCALE.batch_size

    def test_scaled_copy(self):
        s = SMOKE_SCALE.scaled(rounds=99)
        assert s.rounds == 99
        assert SMOKE_SCALE.rounds != 99

    @pytest.mark.parametrize("setting", sorted(NONIID_SETTINGS))
    def test_make_federation(self, setting):
        fed = make_federation("cifar10", setting, SMOKE_SCALE, seed=0)
        assert fed.num_clients == SMOKE_SCALE.num_clients
        assert fed.heterogeneity() > 0

    def test_label_set_pool_creates_shared_sets(self):
        fed = make_federation("cifar10", "label_skew_20", SMOKE_SCALE, seed=0)
        groups = fed.ground_truth_groups()
        # pool of 3 sets -> at most 3 distinct groups among 6 clients
        assert groups.max() + 1 <= 3

    def test_model_map(self):
        fed = make_federation("cifar100", "label_skew_20", SMOKE_SCALE, seed=0)
        model = make_model_fn("cifar100", fed, SMOKE_SCALE)(np.random.default_rng(0))
        assert model.name == "resnet9"
        fed10 = make_federation("cifar10", "label_skew_20", SMOKE_SCALE, seed=0)
        model10 = make_model_fn("cifar10", fed10, SMOKE_SCALE)(np.random.default_rng(0))
        assert model10.name == "lenet5"

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_method_extras_well_formed(self, method):
        extras = method_extras(method, "cifar10", SMOKE_SCALE)
        assert isinstance(extras, dict)


class TestRunner:
    def test_run_cell_smoke(self):
        r = run_cell("cifar10", "fedavg", "label_skew_20", SMOKE_SCALE, seed=0)
        assert r.dataset == "cifar10"
        assert 0.0 <= r.final_accuracy <= 1.0
        assert len(r.history) == SMOKE_SCALE.rounds

    def test_run_cell_deterministic(self):
        a = run_cell("cifar10", "fedclust", "label_skew_20", SMOKE_SCALE, seed=3)
        b = run_cell("cifar10", "fedclust", "label_skew_20", SMOKE_SCALE, seed=3)
        np.testing.assert_array_equal(a.history.accuracies, b.history.accuracies)

    def test_overrides_flow_through(self):
        r = run_cell(
            "cifar10", "fedclust", "label_skew_20", SMOKE_SCALE, seed=0,
            config_overrides={"rounds": 2},
            extra_overrides={"target_clusters": 3, "lam": 1.0},
        )
        assert len(r.history) == 2
        assert r.algorithm.num_clusters == 3


class TestTables:
    def test_table_accuracy_structure(self):
        tab = table_accuracy(
            "label_skew_20", SMOKE_SCALE, datasets=["cifar10"],
            methods=["fedavg", "fedclust"], seeds=(0,),
        )
        assert set(tab["cells"]) == {"fedavg", "fedclust"}
        mean, std = tab["cells"]["fedclust"]["cifar10"]
        assert 0.0 <= mean <= 100.0 and std == 0.0
        text = format_accuracy_table(tab, "T")
        assert "fedclust" in text and "CIFAR10" in text

    def test_table_accuracy_multi_seed_std(self):
        tab = table_accuracy(
            "label_skew_20", SMOKE_SCALE, datasets=["cifar10"],
            methods=["fedavg"], seeds=(0, 1),
        )
        _, std = tab["cells"]["fedavg"]["cifar10"]
        assert std > 0.0

    def test_rounds_and_mb_to_target(self):
        for fn, key in [(table_rounds_to_target, "targets"), (table_comm_cost, "targets")]:
            tab = fn(
                "label_skew_20", SMOKE_SCALE, datasets=["cifar10"],
                methods=["local", "fedclust"], seeds=(0,),
            )
            assert "cifar10" in tab[key]
            # fedclust reaches a 0.9-of-best target by construction of best
            assert tab["cells"]["fedclust"]["cifar10"] is not None or (
                tab["cells"]["local"]["cifar10"] is not None
            )
            text = format_scalar_table(tab, "T")
            assert "Target" in text

    def test_table_newcomers(self):
        tab = table_newcomers(
            "label_skew_20", SMOKE_SCALE, datasets=["cifar10"],
            newcomer_fraction=0.34, personalize_epochs=1, seeds=(0,),
        )
        mean, _ = tab["cells"]["fedclust"]["cifar10"]
        assert 0.0 <= mean <= 100.0


class TestFigures:
    def test_block_contrast(self):
        d = np.array(
            [[0, 1, 5, 5], [1, 0, 5, 5], [5, 5, 0, 1], [5, 5, 1, 0]], dtype=float
        )
        groups = np.array([0, 0, 1, 1])
        assert block_contrast(d, groups) == pytest.approx(5.0)

    def test_block_contrast_validation(self):
        with pytest.raises(ValueError):
            block_contrast(np.zeros((2, 2)), np.array([0, 1]))

    def test_figure1_smoke(self):
        r = figure1(
            num_clients_per_group=2, local_epochs=1, n_samples=200,
            image_size=8, seed=0, layers=(0, 15),
        )
        assert set(r["layers"]) == {0, 15}
        assert r["num_parametric_layers"] == 16
        text = format_figure1(r)
        assert "contrast" in text

    def test_figure1_bad_layer(self):
        with pytest.raises(ValueError):
            figure1(num_clients_per_group=2, local_epochs=1, n_samples=200,
                    image_size=8, layers=(99,))

    def test_figure3_structure(self):
        fig = figure3(
            "label_skew_20", SMOKE_SCALE, datasets=["cifar10"],
            methods=["fedclust", "cfl"], seeds=(0,),
        )
        curves = fig["curves"]["cifar10"]
        assert set(curves) == {"fedclust", "cfl"}
        assert len(curves["fedclust"]["rounds"]) == SMOKE_SCALE.rounds
        text = format_curves(fig, "cifar10")
        assert "round" in text

    def test_figure4_monotone_clusters(self):
        res = figure4("cifar10", "label_skew_20", SMOKE_SCALE, num_lambdas=4, seed=0)
        assert (np.diff(res["lambda"]) > 0).all()
        assert (np.diff(res["num_clusters"]) <= 0).all()
        assert res["num_clusters"][0] == SMOKE_SCALE.num_clients
        assert res["num_clusters"][-1] == 1
        text = format_figure4(res)
        assert "lambda" in text
