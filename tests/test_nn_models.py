"""Tests for the model zoo, parameter serialization, and the SGD optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Dense,
    Sequential,
    build_model,
    clone_model_params,
    final_layer_nbytes,
    final_layer_vector,
    flatten_grads,
    flatten_params,
    layer_slices,
    lenet5,
    mlp,
    param_nbytes,
    resnet9,
    set_flat_grads,
    softmax_cross_entropy,
    unflatten_params,
    vgg_mini,
)

SHAPE = (3, 16, 16)


@pytest.fixture(params=["mlp", "lenet5", "resnet9", "vgg_mini"])
def model(request):
    return build_model(request.param, num_classes=5, input_shape=SHAPE, rng=0)


class TestModelZoo:
    def test_forward_shape(self, model):
        x = np.random.default_rng(0).normal(size=(4, *SHAPE)).astype(np.float32)
        logits = model.forward(x, train=False)
        assert logits.shape == (4, 5)
        assert np.isfinite(logits).all()

    def test_train_forward_backward(self, model):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, *SHAPE)).astype(np.float32)
        y = rng.integers(0, 5, size=6)
        model.zero_grad()
        logits = model.forward(x, train=True)
        loss, dlogits = softmax_cross_entropy(logits, y)
        model.backward(dlogits)
        assert loss > 0
        grads = flatten_grads(model)
        assert np.isfinite(grads).all()
        assert np.abs(grads).max() > 0

    def test_deterministic_init(self, model):
        rebuilt = build_model(model.name, num_classes=5, input_shape=SHAPE, rng=0)
        np.testing.assert_array_equal(flatten_params(model), flatten_params(rebuilt))

    def test_different_seeds_differ(self, model):
        other = build_model(model.name, num_classes=5, input_shape=SHAPE, rng=99)
        assert not np.array_equal(flatten_params(model), flatten_params(other))

    def test_head_is_marked(self, model):
        head = model.final_parametric_layer()
        assert head.is_classifier_head
        assert head.parameters()[0].shape[-1] == 5


class TestSpecificArchitectures:
    def test_vgg_mini_has_16_parametric_layers(self):
        m = vgg_mini(10, input_shape=SHAPE, rng=0)
        assert len(m.layer_parameters()) == 16

    def test_lenet5_parametric_layer_count(self):
        m = lenet5(10, input_shape=SHAPE, rng=0)
        # 2 conv + 3 dense
        assert len(m.layer_parameters()) == 5

    def test_resnet9_has_batchnorm_state(self):
        m = resnet9(10, input_shape=SHAPE, rng=0)
        assert any("running_mean" in k for k in m.state())

    def test_resnet9_state_roundtrip(self):
        a = resnet9(4, input_shape=SHAPE, rng=0)
        b = resnet9(4, input_shape=SHAPE, rng=1)
        for buf in a.state().values():
            buf += 1.0
        b.load_state(a.state())
        for ka, kb in zip(sorted(a.state()), sorted(b.state())):
            np.testing.assert_allclose(a.state()[ka], b.state()[kb])

    def test_unknown_model_name(self):
        with pytest.raises(KeyError, match="available"):
            build_model("transformer", 10, SHAPE)

    def test_lenet5_small_input(self):
        m = lenet5(3, input_shape=(1, 8, 8), rng=0)
        out = m.forward(np.zeros((2, 1, 8, 8), dtype=np.float32), train=False)
        assert out.shape == (2, 3)


class TestSerialization:
    def test_flatten_roundtrip(self, model):
        flat = flatten_params(model)
        assert flat.size == model.num_parameters()
        noise = flat + 0.5
        unflatten_params(model, noise)
        np.testing.assert_allclose(flatten_params(model), noise, rtol=1e-6)

    def test_unflatten_size_validation(self, model):
        with pytest.raises(ValueError):
            unflatten_params(model, np.zeros(3))

    def test_grad_roundtrip(self, model):
        g = np.random.default_rng(2).normal(size=model.num_parameters())
        set_flat_grads(model, g)
        np.testing.assert_allclose(flatten_grads(model), g, rtol=1e-6)

    def test_layer_slices_cover_all(self, model):
        slices = layer_slices(model)
        total = sum(s.stop - s.start for _, s in slices)
        assert total == model.num_parameters()
        assert slices[0][1].start == 0

    def test_final_layer_vector_matches_tail_slice(self, model):
        flat = flatten_params(model)
        _, last = layer_slices(model)[-1]
        np.testing.assert_allclose(final_layer_vector(model), flat[last])

    def test_final_layer_bytes_smaller_than_full(self, model):
        assert 0 < final_layer_nbytes(model) < param_nbytes(model)

    def test_clone_is_deep(self, model):
        clone = clone_model_params(model)
        model.parameters()[0].data += 1.0
        assert not np.allclose(clone[0], model.parameters()[0].data)


class TestSGD:
    def _tiny(self):
        rng = np.random.default_rng(0)
        return Sequential(Dense(4, 2, rng, dtype=np.float64, classifier_head=True))

    def test_plain_step(self):
        m = self._tiny()
        opt = SGD(m, lr=0.1)
        p = m.parameters()[0]
        p.grad[:] = 1.0
        before = p.data.copy()
        opt.step()
        np.testing.assert_allclose(p.data, before - 0.1)

    def test_momentum_accumulates(self):
        m = self._tiny()
        opt = SGD(m, lr=0.1, momentum=0.9)
        p = m.parameters()[0]
        before = p.data.copy()
        p.grad[:] = 1.0
        opt.step()
        p.grad[:] = 1.0
        opt.step()
        # second step moves by lr*(1 + 1.9) total
        np.testing.assert_allclose(p.data, before - 0.1 * (1.0 + 1.9))

    def test_weight_decay_shrinks(self):
        m = self._tiny()
        opt = SGD(m, lr=0.1, weight_decay=0.5)
        p = m.parameters()[0]
        p.grad[:] = 0.0
        before = p.data.copy()
        opt.step()
        np.testing.assert_allclose(p.data, before * (1 - 0.1 * 0.5))

    def test_prox_pulls_to_center(self):
        m = self._tiny()
        opt = SGD(m, lr=0.1, prox_mu=1.0)
        center = [np.zeros_like(p.data) for p in m.parameters()]
        opt.set_prox_center(center)
        p = m.parameters()[0]
        p.grad[:] = 0.0
        before = p.data.copy()
        opt.step()
        np.testing.assert_allclose(p.data, before * (1 - 0.1))

    def test_prox_center_shape_validation(self):
        m = self._tiny()
        opt = SGD(m, lr=0.1, prox_mu=1.0)
        with pytest.raises(ValueError):
            opt.set_prox_center([np.zeros((3, 3))])

    def test_reset_state_clears_momentum(self):
        m = self._tiny()
        opt = SGD(m, lr=0.1, momentum=0.9)
        p = m.parameters()[0]
        p.grad[:] = 1.0
        opt.step()
        opt.reset_state()
        before = p.data.copy()
        p.grad[:] = 1.0
        opt.step()
        np.testing.assert_allclose(p.data, before - 0.1)

    def test_invalid_hyperparams(self):
        m = self._tiny()
        with pytest.raises(ValueError):
            SGD(m, lr=0.0)
        with pytest.raises(ValueError):
            SGD(m, lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(m, lr=0.1, weight_decay=-1.0)


class TestTrainingSanity:
    def test_mlp_learns_separable_blobs(self):
        """An MLP must fit a linearly separable 3-class problem quickly."""
        rng = np.random.default_rng(0)
        n_per = 60
        centers = np.array([[3, 0], [-3, 0], [0, 3]], dtype=np.float64)
        x = np.concatenate(
            [rng.normal(c, 0.5, size=(n_per, 2)) for c in centers]
        ).astype(np.float32)
        y = np.repeat(np.arange(3), n_per)
        model = Sequential(
            Dense(2, 16, rng, dtype=np.float32),
            __import__("repro.nn", fromlist=["ReLU"]).ReLU(),
            Dense(16, 3, rng, dtype=np.float32, classifier_head=True),
        )
        opt = SGD(model, lr=0.5, momentum=0.9)
        for _ in range(60):
            model.zero_grad()
            logits = model.forward(x, train=True)
            _, d = softmax_cross_entropy(logits, y)
            model.backward(d)
            opt.step()
        preds = model.predict(x).argmax(axis=1)
        assert (preds == y).mean() > 0.95
