"""Simulated network: profiles, stragglers, deadlines, history plumbing.

Network draws are keyed off the run's root seed on the main thread, so a
profile changes *which clients report and when* — never differently across
execution backends — and everything it does is recorded: simulated round
seconds, per-span byte counts, and the ids a deadline cut.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.data import build_federated_dataset, make_dataset
from repro.fl.comm import CommTracker
from repro.fl.config import FLConfig
from repro.fl.network import (
    NETWORKS,
    HeterogeneousNetwork,
    IdealNetwork,
    StragglerNetwork,
    make_network,
    resolve_deadline,
)
from repro.nn.models import mlp
from repro.utils.io import load_history, save_history
from repro.utils.rng import RngFactory


@pytest.fixture(scope="module")
def fed():
    ds = make_dataset("cifar10", seed=0, n_samples=240, size=8)
    return build_federated_dataset(
        ds, "label_skew", num_clients=6, frac_labels=0.2, rng=0, num_label_sets=3
    )


def model_fn_for(fed):
    def model_fn(r):
        return mlp(fed.num_classes, fed.input_shape, hidden=16, rng=r)

    return model_fn


def run_one(fed, method="fedavg", backend="serial", workers=0, extra=None, **cfg_kw):
    kw = dict(
        rounds=3, sample_rate=0.6, local_epochs=1, batch_size=10, lr=0.05,
        eval_every=1, backend=backend, workers=workers,
    )
    kw.update(cfg_kw)
    cfg = FLConfig(**kw).with_extra(**(extra or {}))
    algo = build_algorithm(method, fed, model_fn_for(fed), cfg, seed=0)
    history = algo.run()
    return history, algo


class TestProfiles:
    def test_registry_and_factory(self):
        assert set(NETWORKS) == {"ideal", "uniform", "hetero", "stragglers", "flaky"}
        net = make_network(network="hetero", num_clients=4, rngs=RngFactory(0))
        assert isinstance(net, HeterogeneousNetwork)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown network profile"):
            make_network(network="5g")

    def test_auto_resolves_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NETWORK", "stragglers")
        assert isinstance(make_network(network="auto"), StragglerNetwork)
        monkeypatch.delenv("REPRO_NETWORK")
        assert isinstance(make_network(network="auto"), IdealNetwork)

    def test_links_deterministic_per_seed(self):
        a = make_network(network="hetero", num_clients=8, rngs=RngFactory(3))
        b = make_network(network="hetero", num_clients=8, rngs=RngFactory(3))
        c = make_network(network="hetero", num_clients=8, rngs=RngFactory(4))
        for cid in range(8):
            assert a.link(cid).down_bps == b.link(cid).down_bps
            assert a.link(cid).compute_factor == b.link(cid).compute_factor
        assert any(a.link(i).down_bps != c.link(i).down_bps for i in range(8))

    def test_links_independent_of_query_order(self):
        a = make_network(network="hetero", num_clients=8, rngs=RngFactory(0))
        b = make_network(network="hetero", num_clients=8, rngs=RngFactory(0))
        up_a = [a.link(i).up_bps for i in range(8)]
        up_b = [b.link(i).up_bps for i in reversed(range(8))][::-1]
        assert up_a == up_b

    def test_ideal_is_free_and_always_up(self):
        net = make_network(network="ideal", num_clients=4, rngs=RngFactory(0))
        assert net.client_seconds(0, 10**9, 10**9, steps=0) == 0.0
        assert net.available_mask(1, np.arange(4)).all()

    def test_stragglers_have_slow_tail(self):
        cfg = FLConfig(rounds=1, extra={"net_straggler_frac": 0.5,
                                        "net_straggler_factor": 100.0})
        net = make_network(cfg, network="stragglers", num_clients=40,
                           rngs=RngFactory(0))
        factors = np.array([net.link(i).compute_factor for i in range(40)])
        assert (factors > 20.0).any() and (factors < 20.0).any()

    def test_flaky_availability_mask(self):
        net = make_network(network="flaky", num_clients=50, rngs=RngFactory(0))
        ids = np.arange(50)
        mask1 = net.available_mask(1, ids)
        assert mask1.sum() < 50  # some client is down at p=0.8 over 50 draws
        np.testing.assert_array_equal(mask1, net.available_mask(1, ids))
        assert not np.array_equal(mask1, net.available_mask(2, ids))

    def test_availability_validated(self):
        cfg = FLConfig(rounds=1, extra={"net_availability": 0.0})
        with pytest.raises(ValueError, match="net_availability"):
            make_network(cfg, network="hetero", num_clients=4, rngs=RngFactory(0))

    def test_client_seconds_composition(self):
        net = make_network(network="uniform", num_clients=2, rngs=RngFactory(0))
        ln = net.link(0)
        t = net.client_seconds(0, down_nbytes=2_500_000, up_nbytes=0, steps=0)
        assert t == pytest.approx(2 * ln.latency_s + 2_500_000 / ln.down_bps)


class TestDeadline:
    def test_resolve_deadline_env(self, monkeypatch):
        assert resolve_deadline(FLConfig(rounds=1)) is None
        assert resolve_deadline(FLConfig(rounds=1, deadline=3.0)) == 3.0
        monkeypatch.setenv("REPRO_DEADLINE", "1.5")
        assert resolve_deadline(FLConfig(rounds=1)) == 1.5
        monkeypatch.setenv("REPRO_DEADLINE", "soon")
        with pytest.raises(ValueError, match="REPRO_DEADLINE"):
            resolve_deadline(FLConfig(rounds=1))

    def test_deadline_cuts_stragglers_partial_cohort(self, fed):
        extra = {"net_straggler_frac": 0.5, "net_straggler_factor": 1000.0,
                 "net_step_seconds": 0.01}
        h_free, a_free = run_one(fed, network="stragglers", extra=extra)
        h_cut, a_cut = run_one(fed, network="stragglers", deadline=5.0, extra=extra)
        dropped = h_cut.deadline_dropped()
        assert dropped, "a 1000x straggler must miss a 5s deadline"
        # the cut upload never completes: strictly fewer uplink bytes
        assert a_cut.comm.total_up < a_free.comm.total_up
        # downloads happened before the cut: identical bills
        assert a_cut.comm.total_down == a_free.comm.total_down
        # the run still trains and evaluates
        assert h_cut.final_accuracy() > 0.0

    def test_all_cut_round_aggregates_empty_cohort(self, fed):
        h, a = run_one(fed, network="stragglers", deadline=1e-6)
        assert a.comm.total_up == 0
        assert len(h.deadline_dropped()) > 0
        assert len(h) == 3  # every round still evaluated and recorded
        assert h.sim_seconds == pytest.approx([1e-6] * 3)

    def test_sim_seconds_zero_on_ideal_no_deadline(self, fed):
        h, _ = run_one(fed)
        assert (h.sim_seconds == 0.0).all()
        assert h.total_sim_seconds() == 0.0

    def test_sim_seconds_positive_with_network(self, fed):
        h, _ = run_one(fed, network="uniform", deadline=10_000.0)
        assert (h.sim_seconds > 0.0).all()
        assert h.total_sim_seconds() == pytest.approx(float(h.sim_seconds.sum()))

    def test_deadline_keeps_backends_equivalent(self, fed):
        base_h, _ = run_one(fed, network="stragglers", deadline=5.0, codec="int8")
        thread_h, _ = run_one(
            fed, network="stragglers", deadline=5.0, codec="int8",
            backend="thread", workers=3,
        )
        np.testing.assert_array_equal(base_h.accuracies, thread_h.accuracies)
        np.testing.assert_array_equal(base_h.cumulative_mb, thread_h.cumulative_mb)
        assert base_h.deadline_dropped() == thread_h.deadline_dropped()
        np.testing.assert_array_equal(base_h.sim_seconds, thread_h.sim_seconds)


class TestAvailability:
    def test_flaky_drops_before_download(self, fed):
        cfg_extra = {"net_availability": 0.3}
        h_flaky, a_flaky = run_one(fed, network="flaky", extra=cfg_extra)
        _, a_ideal = run_one(fed)
        # an unavailable client costs nothing, unlike dropout (which pays
        # the download)
        assert a_flaky.comm.total_down < a_ideal.comm.total_down
        unavailable = [
            cid for r in h_flaky.records for cid in r.extras.get("unavailable", ())
        ]
        assert unavailable


class TestHistoryPlumbing:
    def test_span_bytes_sum_to_comm_totals(self, fed):
        h, a = run_one(fed, "fedclust", extra={"lam": "auto"}, eval_every=2)
        # spans cover round-0 setup traffic too, so they sum to the totals
        assert int(h.upload_bytes.sum()) == a.comm.total_up
        assert int(h.download_bytes.sum()) == a.comm.total_down

    def test_json_roundtrip_with_wire_fields(self, fed, tmp_path):
        h, _ = run_one(
            fed, network="stragglers", deadline=5.0,
            extra={"net_straggler_frac": 0.5, "net_straggler_factor": 1000.0},
        )
        path = tmp_path / "history.json"
        save_history(h, path)
        loaded = load_history(path)
        np.testing.assert_array_equal(h.upload_bytes, loaded.upload_bytes)
        np.testing.assert_array_equal(h.download_bytes, loaded.download_bytes)
        np.testing.assert_array_equal(h.sim_seconds, loaded.sim_seconds)
        assert loaded.deadline_dropped() == h.deadline_dropped()

    def test_legacy_json_loads_with_defaults(self, tmp_path):
        import json

        legacy = {
            "algorithm": "fedavg", "dataset": "d", "rounds": [1, 2],
            "accuracy": [0.1, 0.2], "train_loss": [1.0, 0.5],
            "cumulative_mb": [1.0, 2.0],
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy))
        h = load_history(path)
        assert (h.upload_bytes == 0).all()
        assert (h.sim_seconds == 0.0).all()
        assert h.deadline_dropped() == []


class TestCommTracker:
    def test_cumulative_mb_rejects_negative_rounds(self):
        tracker = CommTracker()
        with pytest.raises(ValueError, match="rounds"):
            tracker.cumulative_mb(-1)
        assert tracker.cumulative_mb(0).size == 0

    def test_reset_clears_everything(self):
        tracker = CommTracker()
        tracker.record_upload(1, 100, logical_nbytes=800)
        tracker.record_download(1, 50)
        assert tracker.total_bytes == 150
        assert tracker.total_logical_bytes == 850
        tracker.reset()
        assert tracker.total_bytes == 0
        assert tracker.total_logical_bytes == 0
        assert tracker.round_bytes(1) == (0, 0)

    def test_logical_defaults_to_wire(self):
        tracker = CommTracker()
        tracker.record_upload(0, 42)
        assert tracker.total_logical_up == 42

    def test_negative_sizes_rejected(self):
        tracker = CommTracker()
        with pytest.raises(ValueError):
            tracker.record_upload(0, -1)
        with pytest.raises(ValueError):
            tracker.record_download(0, 10, logical_nbytes=-5)
