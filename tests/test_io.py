"""Tests for checkpoint / history persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import History, RoundRecord
from repro.nn import flatten_params, lenet5, mlp, resnet9
from repro.utils.io import load_history, load_model, save_history, save_model


class TestModelCheckpoint:
    @pytest.mark.parametrize("builder", [mlp, lenet5, resnet9])
    def test_roundtrip(self, tmp_path, builder):
        a = builder(5, input_shape=(3, 16, 16), rng=0)
        b = builder(5, input_shape=(3, 16, 16), rng=99)
        path = tmp_path / "ckpt.npz"
        save_model(a, path)
        load_model(b, path)
        np.testing.assert_allclose(flatten_params(b), flatten_params(a), rtol=1e-6)

    def test_state_buffers_roundtrip(self, tmp_path):
        a = resnet9(4, input_shape=(3, 16, 16), rng=0)
        for buf in a.state().values():
            buf += 3.0
        b = resnet9(4, input_shape=(3, 16, 16), rng=1)
        path = tmp_path / "ckpt.npz"
        save_model(a, path)
        load_model(b, path)
        for key, buf in a.state().items():
            np.testing.assert_allclose(b.state()[key], buf)

    def test_architecture_mismatch_rejected(self, tmp_path):
        a = mlp(5, input_shape=(3, 16, 16), rng=0)
        b = lenet5(5, input_shape=(3, 16, 16), rng=0)
        path = tmp_path / "ckpt.npz"
        save_model(a, path)
        with pytest.raises(ValueError):
            load_model(b, path)


class TestHistoryPersistence:
    def test_roundtrip(self, tmp_path):
        h = History("fedclust", "cifar10")
        for i in range(5):
            h.append(RoundRecord(round=i + 1, accuracy=0.1 * i, train_loss=1.0 - 0.1 * i,
                                 cumulative_mb=float(i)))
        path = tmp_path / "hist.json"
        save_history(h, path)
        h2 = load_history(path)
        assert h2.algorithm == "fedclust"
        assert h2.dataset == "cifar10"
        np.testing.assert_allclose(h2.accuracies, h.accuracies)
        np.testing.assert_allclose(h2.cumulative_mb, h.cumulative_mb)
        assert h2.rounds_to_target(0.3) == h.rounds_to_target(0.3)
