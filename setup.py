"""Legacy setup shim: this environment has no `wheel` package, so editable
installs must go through `setup.py develop` rather than PEP 517."""

from setuptools import setup

setup()
